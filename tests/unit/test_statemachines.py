"""Unit tests for the deterministic state machines and the undo log."""

import pytest

from repro.statemachine import (
    BankMachine,
    CounterMachine,
    KVStoreMachine,
    StackMachine,
    UndoLog,
    WrongShard,
)

pytestmark = pytest.mark.unit



class TestStackMachine:
    def test_push_pop_lifo(self):
        m = StackMachine()
        assert m.apply(("push", "a")).ok
        assert m.apply(("push", "b")).ok
        assert m.apply(("pop",)).value == "b"
        assert m.apply(("pop",)).value == "a"

    def test_pop_empty_is_deterministic_error(self):
        m = StackMachine()
        result = m.apply(("pop",))
        assert not result.ok
        assert "empty" in result.error

    def test_top_and_size(self):
        m = StackMachine()
        m.apply(("push", "x"))
        assert m.apply(("top",)).value == "x"
        assert m.apply(("size",)).value == 1
        assert m.apply(("top",)).value == "x"  # top does not remove

    def test_top_empty_error(self):
        assert not StackMachine().apply(("top",)).ok

    def test_unknown_op(self):
        result = StackMachine().apply(("fly",))
        assert not result.ok
        assert "unknown operation" in result.error

    def test_undo_push(self):
        m = StackMachine()
        _result, undo = m.apply_with_undo(("push", "x"))
        undo()
        assert m.fingerprint() == ()

    def test_undo_pop_restores_value(self):
        m = StackMachine()
        m.apply(("push", "x"))
        _result, undo = m.apply_with_undo(("pop",))
        undo()
        assert m.fingerprint() == ("x",)

    def test_undo_of_failed_op_is_noop(self):
        m = StackMachine()
        _result, undo = m.apply_with_undo(("pop",))
        undo()
        assert m.fingerprint() == ()

    def test_snapshot_restore(self):
        m = StackMachine()
        m.apply(("push", "x"))
        snap = m.snapshot()
        m.apply(("push", "y"))
        m.restore(snap)
        assert m.fingerprint() == ("x",)

    def test_figure1_semantics(self):
        # Initial stack [y]: order (push;pop) pops x, order (pop;push) pops y.
        m1 = StackMachine()
        m1.apply(("push", "y"))
        m1.apply(("push", "x"))
        assert m1.apply(("pop",)).value == "x"

        m2 = StackMachine()
        m2.apply(("push", "y"))
        assert m2.apply(("pop",)).value == "y"


class TestKVStoreMachine:
    def test_set_get_delete(self):
        m = KVStoreMachine()
        assert m.apply(("set", "k", 1)).value is None
        assert m.apply(("get", "k")).value == 1
        assert m.apply(("set", "k", 2)).value == 1  # returns previous
        assert m.apply(("delete", "k")).value == 2
        assert not m.apply(("get", "k")).ok

    def test_get_missing_error(self):
        assert not KVStoreMachine().apply(("get", "nope")).ok

    def test_delete_missing_error(self):
        assert not KVStoreMachine().apply(("delete", "nope")).ok

    def test_cas_success_and_failure(self):
        m = KVStoreMachine()
        m.apply(("set", "k", "v1"))
        assert m.apply(("cas", "k", "v1", "v2")).value is True
        assert m.apply(("cas", "k", "v1", "v3")).value is False
        assert m.apply(("get", "k")).value == "v2"

    def test_cas_on_missing_key_fails_gracefully(self):
        assert KVStoreMachine().apply(("cas", "k", "a", "b")).value is False

    def test_keys_sorted(self):
        m = KVStoreMachine()
        m.apply(("set", "b", 1))
        m.apply(("set", "a", 2))
        assert m.apply(("keys",)).value == ("a", "b")

    def test_undo_set_restores_previous(self):
        m = KVStoreMachine()
        m.apply(("set", "k", "old"))
        _result, undo = m.apply_with_undo(("set", "k", "new"))
        undo()
        assert m.apply(("get", "k")).value == "old"

    def test_undo_set_removes_fresh_key(self):
        m = KVStoreMachine()
        _result, undo = m.apply_with_undo(("set", "k", "v"))
        undo()
        assert not m.apply(("get", "k")).ok

    def test_undo_delete(self):
        m = KVStoreMachine()
        m.apply(("set", "k", "v"))
        _result, undo = m.apply_with_undo(("delete", "k"))
        undo()
        assert m.apply(("get", "k")).value == "v"

    def test_undo_cas(self):
        m = KVStoreMachine()
        m.apply(("set", "k", "a"))
        _result, undo = m.apply_with_undo(("cas", "k", "a", "b"))
        undo()
        assert m.apply(("get", "k")).value == "a"

    def test_fingerprint_order_insensitive(self):
        m1, m2 = KVStoreMachine(), KVStoreMachine()
        m1.apply(("set", "a", 1))
        m1.apply(("set", "b", 2))
        m2.apply(("set", "b", 2))
        m2.apply(("set", "a", 1))
        assert m1.fingerprint() == m2.fingerprint()


class TestCounterMachine:
    def test_incr_returns_position(self):
        m = CounterMachine()
        assert m.apply(("incr",)).value == 1
        assert m.apply(("incr",)).value == 2
        assert m.apply(("incr", 10)).value == 12

    def test_decr_and_read(self):
        m = CounterMachine(initial=5)
        assert m.apply(("decr",)).value == 4
        assert m.apply(("read",)).value == 4

    def test_non_integer_amount_rejected(self):
        assert not CounterMachine().apply(("incr", "lots")).ok

    def test_undo_roundtrip(self):
        m = CounterMachine()
        _result, undo = m.apply_with_undo(("incr", 7))
        undo()
        assert m.fingerprint() == 0


class TestBankMachine:
    def test_open_deposit_withdraw(self):
        m = BankMachine()
        assert m.apply(("open", "alice")).value == 0
        assert m.apply(("deposit", "alice", 100)).value == 100
        assert m.apply(("withdraw", "alice", 30)).value == 70

    def test_double_open_rejected(self):
        m = BankMachine({"alice": 0})
        assert not m.apply(("open", "alice")).ok

    def test_overdraft_rejected(self):
        m = BankMachine({"alice": 10})
        result = m.apply(("withdraw", "alice", 100))
        assert not result.ok
        assert m.apply(("balance", "alice")).value == 10

    def test_transfer(self):
        m = BankMachine({"alice": 100, "bob": 0})
        result = m.apply(("transfer", "alice", "bob", 40))
        assert result.value == (60, 40)
        assert m.total_balance() == 100

    def test_transfer_overdraft(self):
        m = BankMachine({"alice": 10, "bob": 0})
        assert not m.apply(("transfer", "alice", "bob", 40)).ok

    def test_missing_account(self):
        m = BankMachine()
        assert not m.apply(("deposit", "ghost", 1)).ok
        assert not m.apply(("balance", "ghost")).ok

    def test_negative_amount_rejected(self):
        m = BankMachine({"alice": 10})
        assert not m.apply(("deposit", "alice", -5)).ok

    def test_total(self):
        m = BankMachine({"a": 10, "b": 20})
        assert m.apply(("total",)).value == 30

    def test_undo_transfer_conserves(self):
        m = BankMachine({"alice": 100, "bob": 50})
        _result, undo = m.apply_with_undo(("transfer", "alice", "bob", 25))
        undo()
        assert m.apply(("balance", "alice")).value == 100
        assert m.apply(("balance", "bob")).value == 50

    def test_undo_open(self):
        m = BankMachine()
        _result, undo = m.apply_with_undo(("open", "x"))
        undo()
        assert not m.apply(("balance", "x")).ok


class TestUndoLog:
    def test_reverse_order_undo(self):
        log = UndoLog()
        state = []
        log.push("m1", lambda: state.append("undo-m1"))
        log.push("m2", lambda: state.append("undo-m2"))
        log.undo_last("m2")
        log.undo_last("m1")
        assert state == ["undo-m2", "undo-m1"]
        assert len(log) == 0

    def test_out_of_order_undo_fails_loudly(self):
        log = UndoLog()
        log.push("m1", lambda: None)
        log.push("m2", lambda: None)
        with pytest.raises(RuntimeError, match="out-of-order"):
            log.undo_last("m1")

    def test_undo_empty_fails(self):
        with pytest.raises(RuntimeError, match="empty"):
            UndoLog().undo_last("m1")

    def test_commit_clears(self):
        log = UndoLog()
        log.push("m1", lambda: None)
        log.commit()
        assert len(log) == 0
        assert log.tags == []

    def test_tags_in_order(self):
        log = UndoLog()
        log.push("m1", lambda: None)
        log.push("m2", lambda: None)
        assert log.tags == ["m1", "m2"]


class TestDeterminism:
    """Two replicas applying the same ops reach identical state/results."""

    @pytest.mark.parametrize(
        "factory,ops",
        [
            (
                StackMachine,
                [("push", "a"), ("pop",), ("pop",), ("push", "b"), ("size",)],
            ),
            (
                KVStoreMachine,
                [("set", "k", 1), ("cas", "k", 1, 2), ("delete", "k"), ("get", "k")],
            ),
            (
                lambda: BankMachine({"a": 100, "b": 0}),
                [("transfer", "a", "b", 30), ("withdraw", "b", 50), ("total",)],
            ),
        ],
    )
    def test_replicated_determinism(self, factory, ops):
        m1, m2 = factory(), factory()
        results1 = [m1.apply(op) for op in ops]
        results2 = [m2.apply(op) for op in ops]
        assert results1 == results2
        assert m1.fingerprint() == m2.fingerprint()


class TestKVMigration:
    """Key ownership + the mig_* family on the KV machine."""

    def test_unsharded_machine_owns_everything(self):
        m = KVStoreMachine()
        assert m.owns("anything")
        assert m.owned_keys() is None
        assert m.apply(("set", "anything", 1)).ok
        # And migration ops refuse deterministically (unsharded machines
        # skip the migration dispatch entirely, so this is bad_op).
        assert not m.apply(("mig_prepare", "m1", "anything", 1)).ok

    def test_wrong_shard_on_unowned_key(self):
        m = KVStoreMachine(owned=["a"])
        result = m.apply(("set", "b", 1))
        assert not result.ok
        assert isinstance(result.value, WrongShard)
        assert result.value.key == "b"
        assert result.value.hint is None  # never exported from here

    def test_prepare_freezes_and_redirects_with_hint(self):
        m = KVStoreMachine(owned=["a", "b"])
        m.apply(("set", "a", 41))
        result = m.apply(("mig_prepare", "m1", "a", 3))
        assert result.ok and result.value == ("exported", ("present", 41))
        assert not m.owns("a")
        redirect = m.apply(("get", "a"))
        assert isinstance(redirect.value, WrongShard)
        assert redirect.value.hint == 3
        assert m.outbound_migrations() == {"m1": ("a", 3, ("present", 41))}

    def test_full_migration_cycle_between_machines(self):
        src = KVStoreMachine(owned=["a", "b"])
        dst = KVStoreMachine(owned=["c"])
        src.apply(("set", "a", 42))
        state = src.apply(("mig_prepare", "m1", "a", 1)).value[1]
        assert dst.apply(("mig_install", "m1", "a", state)).ok
        assert dst.owns("a")
        assert dst.apply(("get", "a")).value == 42
        assert src.apply(("mig_status", "m1")).value[0] == "prepared"
        assert dst.apply(("mig_status", "m1")).value == ("installed", "a")
        assert src.apply(("mig_forget", "m1")).value == ("forgotten",)
        assert src.apply(("mig_status", "m1")).value == ("unknown",)
        assert src.outbound_migrations() == {}

    def test_install_is_idempotent_by_mid(self):
        dst = KVStoreMachine(owned=[])
        state = ("present", 7)
        assert dst.apply(("mig_install", "m1", "a", state)).value == ("installed",)
        assert dst.apply(("mig_install", "m1", "a", state)).value == ("already",)
        assert dst.apply(("get", "a")).value == 7

    def test_forget_unknown_mid_is_noop(self):
        m = KVStoreMachine(owned=["a"])
        assert m.apply(("mig_forget", "nope")).value == ("noop",)

    def test_prepare_of_never_set_key_exports_absent(self):
        src = KVStoreMachine(owned=["a"])
        dst = KVStoreMachine(owned=[])
        state = src.apply(("mig_prepare", "m1", "a", 1)).value[1]
        assert state == ("absent",)
        assert dst.apply(("mig_install", "m1", "a", state)).ok
        assert dst.owns("a")
        assert not dst.apply(("get", "a")).ok  # still never set

    def test_prepare_undo_restores_ownership_and_state(self):
        m = KVStoreMachine(owned=["a"])
        m.apply(("set", "a", 5))
        before = m.fingerprint()
        _result, undo = m.apply_with_undo(("mig_prepare", "m1", "a", 2))
        undo()
        assert m.fingerprint() == before
        assert m.apply(("get", "a")).value == 5

    def test_install_undo_removes_key(self):
        m = KVStoreMachine(owned=[])
        before = m.fingerprint()
        _result, undo = m.apply_with_undo(("mig_install", "m1", "a", ("present", 9)))
        undo()
        assert m.fingerprint() == before
        assert not m.owns("a")

    def test_ownership_in_fingerprint(self):
        # Replicas that disagree only on ownership must not fingerprint
        # equal: the convergence checker has to see the divergence.
        m1 = KVStoreMachine(owned=["a"])
        m2 = KVStoreMachine(owned=["a", "b"])
        assert m1.fingerprint() != m2.fingerprint()


class TestBankMigration:
    def test_export_blocked_by_escrow_hold(self):
        m = BankMachine({"x": 100}, owned=["x"])
        m.apply(("tx_prepare", "t1", "debit", "x", 30))
        result = m.apply(("mig_prepare", "m1", "x", 1))
        assert not result.ok and "escrow hold" in result.error
        m.apply(("tx_commit", "t1"))
        assert m.apply(("mig_prepare", "m1", "x", 1)).ok

    def test_exported_balance_stays_in_conserved_total(self):
        m = BankMachine({"x": 100, "y": 50}, owned=["x", "y"])
        assert m.conserved_total() == 150
        m.apply(("mig_prepare", "m1", "x", 1))
        assert m.total_balance() == 50
        assert m.migrating_total() == 100
        assert m.conserved_total() == 150
        m.apply(("mig_forget", "m1"))
        assert m.conserved_total() == 50  # the money left this shard

    def test_migration_cycle_conserves_money_across_machines(self):
        src = BankMachine({"x": 100}, owned=["x"])
        dst = BankMachine({"y": 10}, owned=["y"])
        state = src.apply(("mig_prepare", "m1", "x", 1)).value[1]
        assert state == 100
        dst.apply(("mig_install", "m1", "x", state))
        src.apply(("mig_forget", "m1"))
        assert src.conserved_total() + dst.conserved_total() == 110
        assert dst.apply(("balance", "x")).value == 100

    def test_ops_on_departed_account_redirect(self):
        m = BankMachine({"x": 100, "y": 5}, owned=["x", "y"])
        m.apply(("mig_prepare", "m1", "x", 2))
        for op in (
            ("balance", "x"),
            ("withdraw", "x", 1),
            ("transfer", "x", "y", 1),
            ("tx_prepare", "t9", "debit", "x", 1),
        ):
            result = m.apply(op)
            assert isinstance(result.value, WrongShard), op
            assert result.value.hint == 2
