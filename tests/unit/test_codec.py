"""Unit tests for the binary wire codec (registry, escape hatches, sizes)."""

import pytest

from repro.core.messages import Reply, Request, SeqOrder
from repro.failure.detector import Heartbeat
from repro.runtime.codec import (
    WIRE_TAGS,
    BinaryCodec,
    PickleCodec,
    make_codec,
    registered_types,
)
from repro.statemachine.base import OpResult

pytestmark = pytest.mark.unit


class Opaque:
    """Unregistered (rides the escape hatches); picklable by module path."""

    def __init__(self, label: str) -> None:
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Opaque) and other.label == self.label


_REPLY = Reply(
    "c1:17", OpResult(True, 1234), 17, frozenset(("p1", "p2", "p3")), 0, slot=17
)


class TestRegistry:
    def test_wire_contract_is_pinned(self):
        """Tags are registration-order positions -- the wire contract.
        Appending a class is fine; renumbering an existing one is not,
        and this pin makes that mistake loud."""
        assert WIRE_TAGS[Request] == 0
        assert WIRE_TAGS[Reply] == 1
        assert WIRE_TAGS[SeqOrder] == 5
        assert WIRE_TAGS[Heartbeat] == len(WIRE_TAGS) - 1
        assert set(WIRE_TAGS) == set(registered_types())

    def test_binary_frames_are_compact(self):
        """The headline claim: a protocol frame is much smaller in
        binary than in pickle (class paths never go on the wire)."""
        binary = BinaryCodec.encode_frame("p1", _REPLY)
        pickled = PickleCodec.encode_frame("p1", _REPLY)
        assert len(binary) < 0.7 * len(pickled)

    def test_heartbeats_do_not_take_the_escape_hatch(self):
        """Heartbeats are the steady-state background traffic; they must
        be a registered node, not a pickled leaf."""
        frame = BinaryCodec.encode("p1")  # warm nothing -- just a leaf
        assert frame[0] == 1
        encoded = BinaryCodec.encode(Heartbeat(42))
        assert encoded[0] == 1  # binary discriminator
        assert b"Heartbeat" not in encoded  # no pickled class path
        assert BinaryCodec.decode(encoded) == Heartbeat(42)


class TestEscapeHatches:
    def test_unregistered_payload_rides_pickle_leaf(self):
        message = Opaque("hello")
        encoded = BinaryCodec.encode(message)
        assert encoded[0] == 1  # still a binary frame; the leaf is pickled
        assert BinaryCodec.decode(encoded) == message

    def test_unregistered_nested_in_registered_roundtrips(self):
        reply = Reply("c1:1", OpResult(False, Opaque("why")), 1, frozenset(), 0)
        src, out = BinaryCodec.decode_frame(BinaryCodec.encode_frame("p2", reply))
        assert src == "p2" and out == reply

    def test_lying_annotation_falls_back_to_whole_frame_pickle(self):
        """A trusted-annotated field holding a marshal-hostile value
        makes ``marshal.dumps`` raise; the frame silently degrades to
        whole-frame pickle (discriminator 0) and still round-trips."""
        request = Request("c1:1", "c1", ("set", Opaque("not native")))
        encoded = BinaryCodec.encode_frame("c1", request)
        assert encoded[0] == 0  # pickle discriminator
        src, out = BinaryCodec.decode_frame(encoded)
        assert src == "c1" and out == request


class TestMakeCodec:
    def test_names_resolve(self):
        assert make_codec("binary").name == "binary"
        assert make_codec("pickle").name == "pickle"

    def test_codec_objects_pass_through(self):
        codec = PickleCodec()
        assert make_codec(codec) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("json")

    def test_non_codec_object_rejected(self):
        with pytest.raises(TypeError, match="codec spec"):
            make_codec(42)
