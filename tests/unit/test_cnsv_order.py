"""Unit tests for Cnsv-order (Fig. 7) against the Section 5.4 specification."""

import pytest

from repro.core.cnsv_order import (
    compute_bad_new,
    decision_from_vector,
)
from repro.core.sequences import EMPTY, MessageSequence, common_prefix

pytestmark = pytest.mark.unit



def decision(*pairs):
    """Build a decision: pairs of (pid, dlv tuple, notdlv tuple)."""
    return decision_from_vector(
        [(pid, (tuple(dlv), tuple(notdlv))) for pid, dlv, notdlv in pairs]
    )


class TestFigure3Shape:
    """Paper Figure 3: majority Opt-delivered; nothing undone."""

    DECISION = decision(
        ("p2", ("m1", "m2", "m3", "m4"), ()),
        ("p3", ("m1", "m2"), ("m4", "m3")),
    )

    def test_process_with_full_sequence(self):
        result = compute_bad_new(
            MessageSequence(["m1", "m2", "m3", "m4"]), self.DECISION
        )
        assert result.bad == EMPTY
        assert result.new == EMPTY
        assert result.good == ("m1", "m2", "m3", "m4")

    def test_process_with_short_sequence(self):
        result = compute_bad_new(MessageSequence(["m1", "m2"]), self.DECISION)
        assert result.bad == EMPTY
        assert result.new == ("m3", "m4")
        assert result.final_sequence == ("m1", "m2", "m3", "m4")


class TestFigure4Shape:
    """Paper Figure 4: the minority's optimistic suffix is undone."""

    DECISION = decision(
        ("p3", ("m1", "m2"), ("m4", "m3")),
        ("p4", ("m1", "m2"), ("m3", "m4")),
    )

    def test_minority_process_undoes(self):
        result = compute_bad_new(
            MessageSequence(["m1", "m2", "m3", "m4"]), self.DECISION
        )
        assert result.bad == ("m3", "m4")
        assert result.new == ("m4", "m3")
        assert result.final_sequence == ("m1", "m2", "m4", "m3")

    def test_majority_process_just_delivers(self):
        result = compute_bad_new(MessageSequence(["m1", "m2"]), self.DECISION)
        assert result.bad == EMPTY
        assert result.new == ("m4", "m3")

    def test_merge_is_pid_ordered_first_wins(self):
        # ⊎({m4;m3}, {m3;m4}) with p3 < p4 gives {m4;m3}.
        result = compute_bad_new(EMPTY, self.DECISION)
        assert result.new == ("m1", "m2", "m4", "m3")


class TestThriftiness:
    def test_shared_prefix_not_undone(self):
        # O_delivered = [a;b;c]; dlvmax = [a]; notdlv re-schedules b then c:
        # naively Bad = [b;c], New = [b;c] -- thriftiness keeps them.
        dk = decision(
            ("p1", ("a",), ("b", "c")),
            ("p2", ("a",), ("b", "c")),
        )
        result = compute_bad_new(MessageSequence(["a", "b", "c"]), dk)
        assert result.bad == EMPTY
        assert result.new == EMPTY
        assert result.good == ("a", "b", "c")

    def test_partial_shared_prefix(self):
        # Bad would be [b;c], New would be [b;d;c]: only b is saved.
        dk = decision(
            ("p1", ("a",), ("b", "d", "c")),
            ("p2", ("a",), ()),
        )
        result = compute_bad_new(MessageSequence(["a", "b", "c"]), dk)
        assert result.bad == ("c",)
        assert result.new == ("d", "c")
        assert result.good == ("a", "b")
        # Undo thriftiness property: ⊓(Bad, New) = ε.
        assert common_prefix(result.bad, result.new) == EMPTY


class TestSpecificationProperties:
    """Direct checks of the Section 5.4 properties on assorted inputs."""

    CASES = [
        # (o_delivered, decision pairs)
        (("m1", "m2"), [("p1", ("m1", "m2"), ()), ("p2", ("m1",), ("m2",))]),
        ((), [("p1", (), ("m1",)), ("p2", (), ("m1", "m2"))]),
        (
            ("m1", "m2", "m3"),
            [("p1", ("m1",), ("m9",)), ("p2", ("m1",), ("m3", "m2"))],
        ),
        (
            ("a", "b"),
            [("p1", ("a", "b", "c"), ("d",)), ("p2", ("a", "b"), ("d", "e"))],
        ),
    ]

    @pytest.mark.parametrize("o_dlv,pairs", CASES)
    def test_unicity(self, o_dlv, pairs):
        result = compute_bad_new(MessageSequence(o_dlv), decision(*pairs))
        good = MessageSequence(o_dlv).subtract(result.bad)
        assert not (result.new.to_set() & good.to_set())

    @pytest.mark.parametrize("o_dlv,pairs", CASES)
    def test_undo_legality(self, o_dlv, pairs):
        result = compute_bad_new(MessageSequence(o_dlv), decision(*pairs))
        good = MessageSequence(o_dlv).subtract(result.bad)
        assert good.concat(result.bad) == MessageSequence(o_dlv)

    @pytest.mark.parametrize("o_dlv,pairs", CASES)
    def test_undo_thriftiness(self, o_dlv, pairs):
        result = compute_bad_new(MessageSequence(o_dlv), decision(*pairs))
        assert common_prefix(result.bad, result.new) == EMPTY

    @pytest.mark.parametrize("o_dlv,pairs", CASES)
    def test_validity(self, o_dlv, pairs):
        result = compute_bad_new(MessageSequence(o_dlv), decision(*pairs))
        proposed = set()
        for _pid, dlv, notdlv in pairs:
            proposed |= set(dlv) | set(notdlv)
        assert result.new.to_set() <= proposed

    def test_agreement_across_processes(self):
        # Processes with prefix-related O_delivered values must compute
        # identical final sequences from the same decision.
        dk = decision(
            ("p1", ("m1", "m2", "m3"), ("m5",)),
            ("p2", ("m1",), ("m4", "m5")),
        )
        finals = set()
        for o_dlv in [(), ("m1",), ("m1", "m2"), ("m1", "m2", "m3")]:
            result = compute_bad_new(MessageSequence(o_dlv), dk)
            finals.add(
                MessageSequence(o_dlv).subtract(result.bad).concat(result.new).items
            )
        assert len(finals) == 1

    def test_non_triviality_majority_message_delivered(self):
        # m held by both processes in the decision -> delivered.
        dk = decision(
            ("p1", (), ("m",)),
            ("p2", (), ("m",)),
        )
        result = compute_bad_new(EMPTY, dk)
        assert "m" in result.new


class TestDecisionNormalization:
    def test_sorts_by_pid(self):
        dk = decision_from_vector(
            [("p2", (("a",), ())), ("p1", ((), ("b",)))]
        )
        assert [pid for pid, _v in dk] == ["p1", "p2"]

    def test_malformed_proposal_rejected(self):
        with pytest.raises(TypeError):
            decision_from_vector([("p1", "not-a-pair")])
        with pytest.raises(TypeError):
            decision_from_vector([("p1", (("a",),))])

    def test_empty_decision_rejected(self):
        with pytest.raises(ValueError):
            compute_bad_new(EMPTY, ())


class TestDlvMaxSelection:
    def test_longest_prefix_wins(self):
        dk = decision(
            ("p1", ("a",), ()),
            ("p2", ("a", "b", "c"), ()),
            ("p3", ("a", "b"), ()),
        )
        result = compute_bad_new(EMPTY, dk)
        assert result.dlv_max == ("a", "b", "c")
        assert result.new == ("a", "b", "c")
