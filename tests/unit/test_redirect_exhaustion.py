"""Redirect-budget exhaustion must terminate, not strand, an operation.

A key frozen by ``mig_prepare`` is owned by *no* shard until its install
lands; if the migration never completes (stranded coordinator), every
retry redirects again.  When ``max_redirects`` is spent the client must
surface a deterministic terminal WrongShard failure, clear every piece
of in-flight bookkeeping (``_pending`` / ``_redirect_pending`` /
``outstanding``), and let the workload driver finish -- a stranded
``pending()`` would hang the run forever.
"""

import pytest

from repro.sharding import ShardedScenarioConfig, attach_rebalancer, build_sharded_scenario
from repro.statemachine.base import OpResult, WrongShard

pytestmark = pytest.mark.unit


def freeze_first_key_forever(run):
    """Start a migration of key 0 whose coordinator dies immediately:
    the key stays parked in the source's outbound escrow, ownerless."""
    coordinator = attach_rebalancer(run)
    key = run.key_universe[0]
    src = run.routing_table.shard_of(key)
    dst = (src + 1) % run.config.n_shards

    def kick():
        coordinator.migrate(key, dst)
        # Crash while the prepare is still in flight (it is R-multicast,
        # so the servers execute it and freeze the key anyway): the
        # install never happens and nobody ever bumps the routing epoch.
        run.sim.schedule_at(run.sim.now + 2.0, lambda: run.network.crash(coordinator.client.pid))

    run.sim.schedule_at(10.0, kick)
    return key


def run_against_frozen_key(read_mode="sequencer", max_redirects=3):
    state = {}

    def arm(run):
        state["key"] = freeze_first_key_forever(run)

    config = ShardedScenarioConfig(
        n_shards=2,
        n_clients=1,
        requests_per_client=0,  # the one op is submitted manually below
        machine="kv",
        workload="uniform",
        seed=11,
        max_redirects=max_redirects,
        redirect_delay=5.0,
        read_mode=read_mode,
    )
    run = build_sharded_scenario(config)
    arm(run)
    client = run.clients[0]
    # Submit one op on the soon-to-be-frozen key well after the freeze.
    op = ("get", "k000") if read_mode != "sequencer" else ("set", "k000", "vX")
    rids = []
    run.sim.schedule_at(80.0, lambda: rids.append(client.submit(op)))
    # Drive the sim directly (the zero-request drivers would declare the
    # run quiescent before the redirect chain even starts).
    run.sim.run(until=2_000.0)
    return run, client, state["key"], rids


class TestRedirectExhaustion:
    def test_write_surfaces_terminal_wrong_shard(self):
        run, client, key, rids = run_against_frozen_key(max_redirects=3)
        assert key == "k000"
        # The run terminated: nothing in flight, nothing stranded.
        assert client.outstanding == 0
        assert client._pending == {}
        assert client._redirect_pending == 0
        assert client._redirect_attempts == {}
        assert client.redirects == 3
        assert client.redirects_exhausted == 1
        # Exactly one logical outcome surfaced: a deterministic
        # WrongShard failure for the frozen key.
        surfaced = [a for a in client.adopted.values() if a.rid not in client.read_rids]
        assert len(surfaced) == 1
        outcome = surfaced[0].value
        assert isinstance(outcome, OpResult) and not outcome.ok
        assert isinstance(outcome.value, WrongShard)
        assert outcome.value.key == key
        exhausted = run.trace.events(kind="redirect_exhausted")
        assert len(exhausted) == 1 and exhausted[0]["attempts"] == 3

    def test_read_surfaces_terminal_wrong_shard(self):
        run, client, key, rids = run_against_frozen_key(
            read_mode="optimistic", max_redirects=2
        )
        assert client.outstanding == 0
        assert client._reads == {}
        assert client._redirect_pending == 0
        assert client.redirects_exhausted == 1
        surfaced = list(client.adopted.values())
        assert len(surfaced) == 1
        outcome = surfaced[0].value
        assert isinstance(outcome, OpResult) and not outcome.ok
        assert isinstance(outcome.value, WrongShard)

    def test_zero_budget_surfaces_immediately(self):
        run, client, key, rids = run_against_frozen_key(max_redirects=0)
        assert client.redirects == 0
        assert client.redirects_exhausted == 1
        assert client.outstanding == 0
        (surfaced,) = client.adopted.values()
        assert isinstance(surfaced.value.value, WrongShard)

    def test_latency_spans_the_whole_redirect_chain(self):
        run, client, key, rids = run_against_frozen_key(max_redirects=2)
        (surfaced,) = [a for a in client.adopted.values()]
        # Two redirect pauses of redirect_delay each sit inside the
        # surfaced latency: the chain is one logical operation.
        assert surfaced.latency >= 2 * run.config.redirect_delay
