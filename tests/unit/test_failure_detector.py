"""Unit tests for the heartbeat and scripted failure detectors (◇S)."""

from typing import Any, List

from repro.failure.detector import (
    HeartbeatFailureDetector,
    ScriptedFailureDetector,
)
from repro.sim.component import ComponentProcess
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

import pytest

pytestmark = pytest.mark.unit



class Monitored(ComponentProcess):
    """A process whose only job is running a heartbeat failure detector."""

    def __init__(self, pid: str, group: List[str], **fd_kwargs: Any) -> None:
        super().__init__(pid)
        self.fd = HeartbeatFailureDetector(self, group, **fd_kwargs)
        self.add_component(self.fd)
        self.transitions: List[tuple] = []
        self.fd.add_listener(lambda p, s: self.transitions.append((p, s)))


def build(n: int = 3, seed: int = 0, **fd_kwargs: Any):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n)]
    processes = [Monitored(pid, group, **fd_kwargs) for pid in group]
    for process in processes:
        network.add_process(process)
    network.start_all()
    return sim, network, processes


class TestStrongCompleteness:
    def test_crashed_process_eventually_suspected_by_all(self):
        sim, network, procs = build(interval=2.0, timeout=6.0)
        network.crash_at(10.0, "p1")
        sim.run(until=50.0)
        for proc in procs[1:]:
            assert proc.fd.is_suspected("p1")

    def test_suspicion_is_permanent_for_crashed(self):
        sim, network, procs = build(interval=2.0, timeout=6.0)
        network.crash_at(5.0, "p2")
        sim.run(until=100.0)
        assert procs[0].fd.is_suspected("p2")
        assert procs[2].fd.is_suspected("p2")


class TestEventualAccuracy:
    def test_no_suspicions_in_stable_run(self):
        sim, network, procs = build(interval=2.0, timeout=6.0)
        sim.run(until=100.0)
        for proc in procs:
            assert proc.fd.suspects == set()

    def test_false_suspicion_recanted_and_timeout_widened(self):
        # A transient partition makes p1 silent long enough to be
        # suspected; after healing the heartbeat recants the suspicion
        # and the timeout grows (eventual accuracy mechanism).
        sim, network, procs = build(interval=2.0, timeout=5.0)
        sim.schedule_at(10.0, lambda: network.set_partition([["p1"], ["p2", "p3"]]))
        sim.schedule_at(30.0, network.heal)
        sim.run(until=40.0)
        p2 = procs[1]
        assert ("p1", True) in p2.transitions  # was suspected
        sim.run(until=80.0)
        assert not p2.fd.is_suspected("p1")  # recanted
        assert p2.fd.current_timeout("p1") > 5.0  # backoff applied


class TestScriptedSuspicions:
    def test_force_suspect_and_unsuspect(self):
        fd = ScriptedFailureDetector()
        seen = []
        fd.add_listener(lambda p, s: seen.append((p, s)))
        fd.force_suspect("p1")
        assert fd.is_suspected("p1")
        fd.force_suspect("p1")  # idempotent: no second notification
        fd.force_unsuspect("p1")
        assert not fd.is_suspected("p1")
        assert seen == [("p1", True), ("p1", False)]

    def test_sticky_forced_suspicion_survives_heartbeats(self):
        sim, network, procs = build(interval=2.0, timeout=1000.0)
        p2 = procs[1]
        p2.fd.force_suspect("p1", sticky=True)
        sim.run(until=50.0)
        assert p2.fd.is_suspected("p1")  # heartbeats keep arriving, still stuck
        p2.fd.force_unsuspect("p1")
        assert not p2.fd.is_suspected("p1")


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        import pytest

        sim = Simulator()
        network = SimNetwork(sim)
        host = ComponentProcess("h")
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(host, ["h", "x"], interval=0)
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(host, ["h", "x"], timeout=-1)
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(host, ["h", "x"], backoff=0.5)

    def test_self_not_monitored(self):
        host = ComponentProcess("p1")
        fd = HeartbeatFailureDetector(host, ["p1", "p2"])
        assert fd.monitored == ["p2"]

    def test_resolve_fd_accepts_instance_and_factory(self):
        import pytest

        from repro.failure.detector import resolve_fd

        host = ComponentProcess("p1")
        scripted = ScriptedFailureDetector()
        assert resolve_fd(scripted, host) is scripted
        built = resolve_fd(
            lambda h: HeartbeatFailureDetector(h, ["p1", "p2"]), host
        )
        assert isinstance(built, HeartbeatFailureDetector)
        with pytest.raises(TypeError):
            resolve_fd("nonsense", host)
