"""Unit tests for the scenario harness and component plumbing."""

import random

import pytest

from repro.faults.injection import random_fault_schedule
from repro.harness.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.sim.component import Component, ComponentProcess
from repro.sim.latency import (
    ConstantLatency,
    LanProfile,
    NormalLatency,
    PerLinkLatency,
    UniformLatency,
)
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

pytestmark = pytest.mark.unit



class TestScenarioConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_scenario(ScenarioConfig(protocol="carrier-pigeon"))

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            build_scenario(ScenarioConfig(machine="turing"))

    def test_unknown_fd_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fd kind"):
            build_scenario(ScenarioConfig(fd_kind="tarot"))

    def test_with_changes_copies(self):
        base = ScenarioConfig(n_servers=3)
        derived = base.with_changes(n_servers=5, seed=9)
        assert base.n_servers == 3
        assert derived.n_servers == 5
        assert derived.seed == 9

    def test_build_wires_expected_processes(self):
        run = build_scenario(ScenarioConfig(n_servers=4, n_clients=2))
        assert run.server_pids == ["p1", "p2", "p3", "p4"]
        assert [c.pid for c in run.clients] == ["c1", "c2"]
        assert set(run.detectors) == {"p1", "p2", "p3", "p4"}

    def test_each_server_gets_its_own_machine(self):
        run = build_scenario(ScenarioConfig(n_servers=3))
        machines = {id(s.machine) for s in run.servers}
        assert len(machines) == 3

    def test_scripted_fd_kind(self):
        from repro.failure.detector import ScriptedFailureDetector

        run = build_scenario(ScenarioConfig(fd_kind="scripted"))
        assert all(
            isinstance(fd, ScriptedFailureDetector)
            for fd in run.detectors.values()
        )

    def test_arm_hook_runs_before_simulation(self):
        seen = {}

        def arm(run):
            seen["time"] = run.sim.now
            seen["servers"] = len(run.servers)

        run = run_scenario(
            ScenarioConfig(requests_per_client=1, arm=arm, seed=1)
        )
        assert seen == {"time": 0.0, "servers": 3}
        assert run.all_done()

    def test_horizon_stops_runaway_scenarios(self):
        # A zero-request config with heartbeats never quiesces by itself;
        # the horizon bounds it.
        run = run_scenario(
            ScenarioConfig(requests_per_client=0, horizon=50.0, grace=1.0)
        )
        assert run.sim.now <= 60.0

    def test_run_exposes_adoptions_and_latencies(self):
        run = run_scenario(ScenarioConfig(requests_per_client=3, seed=2))
        assert len(run.adopted()) == 3
        assert len(run.latencies()) == 3
        assert len(run.submitted_rids()) == 3


class TestComponentDispatch:
    class PingComponent(Component):
        MESSAGE_TYPES = (int,)

        def __init__(self, host):
            super().__init__(host)
            self.got = []

        def on_message(self, src, payload):
            self.got.append((src, payload))

    class Host(ComponentProcess):
        def __init__(self, pid):
            super().__init__(pid)
            self.app_messages = []

        def on_app_message(self, src, payload):
            self.app_messages.append((src, payload))

    def test_routing_by_type(self):
        sim = Simulator()
        network = SimNetwork(sim)
        host = self.Host("h")
        ping = host.add_component(self.PingComponent(host))
        other = self.Host("o")
        network.add_process(host)
        network.add_process(other)
        network.start_all()
        other.env.send("h", 42)  # -> component
        other.env.send("h", "text")  # -> app handler
        sim.run()
        assert ping.got == [("o", 42)]
        assert host.app_messages == [("o", "text")]

    def test_component_env_requires_started_host(self):
        host = self.Host("h")
        component = self.PingComponent(host)
        with pytest.raises(RuntimeError, match="before host start"):
            _ = component.env


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        assert ConstantLatency(2.5).sample(rng, "a", "b") == 2.5
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        rng = random.Random(0)
        model = UniformLatency(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng, "a", "b") <= 2.0
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_normal_truncates(self):
        rng = random.Random(0)
        model = NormalLatency(mean=0.1, stddev=5.0, minimum=0.05)
        assert all(
            model.sample(rng, "a", "b") >= 0.05 for _ in range(200)
        )
        with pytest.raises(ValueError):
            NormalLatency(mean=-1)

    def test_lan_profile_spikes(self):
        rng = random.Random(0)
        calm = LanProfile(base=1.0, jitter=0.0, spike_probability=0.0)
        assert calm.sample(rng, "a", "b") == 1.0
        spiky = LanProfile(
            base=1.0, jitter=0.0, spike_probability=1.0, spike_factor=7.0
        )
        assert spiky.sample(rng, "a", "b") == 7.0
        with pytest.raises(ValueError):
            LanProfile(spike_probability=2.0)

    def test_per_link_overrides(self):
        rng = random.Random(0)
        model = PerLinkLatency(
            ConstantLatency(1.0), {("a", "b"): ConstantLatency(9.0)}
        )
        assert model.sample(rng, "a", "b") == 9.0
        assert model.sample(rng, "b", "a") == 1.0
        model.set_link("b", "a", ConstantLatency(5.0))
        assert model.sample(rng, "b", "a") == 5.0

    def test_reprs_are_informative(self):
        assert "2.5" in repr(ConstantLatency(2.5))
        assert "Uniform" in repr(UniformLatency())
        assert "Normal" in repr(NormalLatency())
        assert "LanProfile" in repr(LanProfile())
        assert "PerLink" in repr(PerLinkLatency(ConstantLatency(1.0), {}))


class TestRandomFaultSchedules:
    def test_respects_majority_bound(self):
        rng = random.Random(1)
        with pytest.raises(ValueError, match="majority"):
            random_fault_schedule(rng, ["p1", "p2", "p3"], 100.0, max_crashes=2)

    def test_deterministic_per_rng_seed(self):
        pids = ["p1", "p2", "p3", "p4", "p5"]
        a = random_fault_schedule(
            random.Random(7), pids, 100.0, 2, suspicion_rate=0.5,
            partition_probability=1.0,
        )
        b = random_fault_schedule(
            random.Random(7), pids, 100.0, 2, suspicion_rate=0.5,
            partition_probability=1.0,
        )
        assert [(x.time, x.kind, x.target) for x in a.actions] == [
            (x.time, x.kind, x.target) for x in b.actions
        ]

    def test_actions_sorted_by_time(self):
        schedule = random_fault_schedule(
            random.Random(3), ["p1", "p2", "p3", "p4", "p5"], 100.0, 2,
            suspicion_rate=0.8, partition_probability=1.0,
        )
        times = [action.time for action in schedule.actions]
        assert times == sorted(times)

    def test_partition_isolates_minority_only(self):
        for seed in range(10):
            schedule = random_fault_schedule(
                random.Random(seed), ["p1", "p2", "p3", "p4", "p5"], 100.0, 0,
                partition_probability=1.0,
            )
            partitions = [
                action for action in schedule.actions
                if action.kind == "partition"
            ]
            for action in partitions:
                minority = action.target[0]
                assert len(minority) <= 2  # < majority of 5
