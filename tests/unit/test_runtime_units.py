"""Unit tests for the asyncio runtime plumbing (timers, crash, routing)."""

import asyncio
from typing import Any, List

import pytest

from repro.runtime.host import AsyncioCluster
from repro.sim.process import Process

pytestmark = pytest.mark.unit



class Recorder(Process):
    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: List[Any] = []

    def on_message(self, src: str, payload: Any) -> None:
        self.received.append((src, payload))


class TestAsyncioCluster:
    def test_route_and_mutual_exclusion(self):
        async def scenario():
            cluster = AsyncioCluster()
            a, b = Recorder("a"), Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            for index in range(20):
                a.env.send("b", index)
            await cluster.run_until(lambda: len(b.received) == 20, timeout=5)
            await cluster.shutdown()
            return b.received

        received = asyncio.run(scenario())
        assert [payload for _src, payload in received] == list(range(20))

    def test_link_delay_preserves_fifo(self):
        async def scenario():
            cluster = AsyncioCluster(link_delay=0.001)
            a, b = Recorder("a"), Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            for index in range(30):
                a.env.send("b", index)
            await cluster.run_until(lambda: len(b.received) == 30, timeout=5)
            await cluster.shutdown()
            return b.received

        received = asyncio.run(scenario())
        assert [payload for _src, payload in received] == list(range(30))

    def test_crashed_process_neither_sends_nor_receives(self):
        async def scenario():
            cluster = AsyncioCluster()
            a, b = Recorder("a"), Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            cluster.crash("b")
            a.env.send("b", "into the void")
            b.env.send("a", "from the grave")
            await asyncio.sleep(0.05)
            await cluster.shutdown()
            return a.received, b.received, b.crashed

        a_received, b_received, b_crashed = asyncio.run(scenario())
        assert b_crashed
        assert b_received == []
        assert a_received == []

    def test_timer_fires_and_cancel_prevents(self):
        async def scenario():
            cluster = AsyncioCluster()
            a = Recorder("a")
            cluster.add_process(a)
            await cluster.start()
            fired = []
            handle1 = a.env.set_timer(0.01, lambda: fired.append("one"))
            handle2 = a.env.set_timer(0.01, lambda: fired.append("two"))
            handle2.cancel()
            await asyncio.sleep(0.05)
            await cluster.shutdown()
            return fired, handle1, handle2

        fired, handle1, handle2 = asyncio.run(scenario())
        assert fired == ["one"]
        assert handle1.fired and handle1.active is False
        assert handle2.cancelled and not handle2.fired

    def test_timers_suppressed_after_crash(self):
        async def scenario():
            cluster = AsyncioCluster()
            a = Recorder("a")
            cluster.add_process(a)
            await cluster.start()
            fired = []
            a.env.set_timer(0.02, lambda: fired.append("x"))
            cluster.crash("a")
            await asyncio.sleep(0.05)
            await cluster.shutdown()
            return fired

        assert asyncio.run(scenario()) == []

    def test_duplicate_pid_rejected(self):
        async def scenario():
            cluster = AsyncioCluster()
            cluster.add_process(Recorder("a"))
            with pytest.raises(ValueError, match="duplicate"):
                cluster.add_process(Recorder("a"))
            await cluster.start()
            with pytest.raises(RuntimeError, match="already started"):
                cluster.add_process(Recorder("b"))
            await cluster.shutdown()

        asyncio.run(scenario())

    def test_trace_records_with_cluster_clock(self):
        async def scenario():
            cluster = AsyncioCluster()
            a = Recorder("a")
            cluster.add_process(a)
            await cluster.start()
            a.env.trace("custom", x=1)
            await cluster.shutdown()
            return cluster.trace.events(kind="custom")

        events = asyncio.run(scenario())
        assert len(events) == 1
        assert events[0].pid == "a"
        assert events[0].time >= 0.0

    def test_per_process_rng_deterministic_by_seed(self):
        async def draws(seed):
            cluster = AsyncioCluster(seed=seed)
            a = Recorder("a")
            cluster.add_process(a)
            await cluster.start()
            values = [a.env.rng.random() for _ in range(5)]
            await cluster.shutdown()
            return values

        first = asyncio.run(draws(7))
        second = asyncio.run(draws(7))
        third = asyncio.run(draws(8))
        assert first == second
        assert first != third
