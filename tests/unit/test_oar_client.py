"""Unit tests for the OAR client's weighted-quorum adoption rule (Fig. 5)."""

from typing import Any, List

from repro.core.client import OARClient
from repro.core.messages import Reply
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process

import pytest

pytestmark = pytest.mark.unit



class Sink(Process):
    """Stands in for a server: absorbs the R-multicast requests."""

    def on_message(self, src: str, payload: Any) -> None:
        pass


def build(n_servers: int = 3):
    sim = Simulator(seed=0)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n_servers)]
    for pid in group:
        network.add_process(Sink(pid))
    client = OARClient("c1", group)
    network.add_process(client)
    network.start_all()
    return sim, network, client, group


def reply(rid, weight, epoch=0, value="v", position=1, conservative=False):
    return Reply(
        rid=rid,
        value=value,
        position=position,
        weight=frozenset(weight),
        epoch=epoch,
        conservative=conservative,
    )


class TestMajorityWeight:
    def test_majority_threshold(self):
        _sim, _network, client, _group = build(3)
        assert client.majority_weight == 2
        _sim, _network, client, _group = build(4)
        assert client.majority_weight == 3
        _sim, _network, client, _group = build(5)
        assert client.majority_weight == 3

    def test_single_sequencer_reply_insufficient(self):
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        client.on_message("p1", reply(rid, {"p1"}))
        assert rid not in client.adopted

    def test_non_sequencer_reply_carries_weight_two(self):
        # A reply with W = {p2, s} alone reaches majority for n=3.
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}))
        assert rid in client.adopted
        assert client.adopted[rid].weight == ("p1", "p2")

    def test_union_of_weights_accumulates(self):
        # n=5: two disjoint-ish optimistic replies unite to a majority.
        sim, network, client, group = build(5)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}))
        assert rid not in client.adopted  # weight 2 < 3
        client.on_message("p3", reply(rid, {"p3", "p1"}))
        assert rid in client.adopted  # union {p1,p2,p3} = 3

    def test_conservative_reply_adopted_alone(self):
        sim, network, client, group = build(5)
        rid = client.submit(("incr",))
        client.on_message(
            "p4", reply(rid, set(group), conservative=True)
        )
        adopted = client.adopted[rid]
        assert adopted.conservative
        assert adopted.weight == tuple(sorted(group))

    def test_heaviest_reply_wins(self):
        # An optimistic and a conservative reply in the same epoch: the
        # conservative (weight Π) must be adopted.
        sim, network, client, group = build(4)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}, value="opt", position=3))
        client.on_message(
            "p3",
            reply(rid, set(group), value="cons", position=4, conservative=True),
        )
        assert client.adopted[rid].value == "cons"
        assert client.adopted[rid].position == 4


class TestEpochSeparation:
    def test_weights_do_not_mix_across_epochs(self):
        # n=5: weight-2 replies from different epochs never unite.
        sim, network, client, group = build(5)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}, epoch=0))
        client.on_message("p3", reply(rid, {"p3", "p2"}, epoch=1))
        assert rid not in client.adopted

    def test_adoption_in_later_epoch(self):
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2"}, epoch=0))
        client.on_message("p3", reply(rid, {"p3", "p2"}, epoch=1))
        assert client.adopted[rid].epoch == 1


class TestReplyBookkeeping:
    def test_server_upgrade_keeps_heavier_reply(self):
        sim, network, client, group = build(4)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}, value="opt"))
        client.on_message(
            "p2", reply(rid, set(group), value="cons", conservative=True)
        )
        assert client.adopted[rid].value == "cons"

    def test_late_replies_counted_not_readopted(self):
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}, value="first"))
        assert client.adopted[rid].value == "first"
        client.on_message("p3", reply(rid, {"p3", "p1"}, value="late"))
        assert client.adopted[rid].value == "first"
        assert client.late_replies == 1

    def test_unknown_rid_ignored(self):
        sim, network, client, group = build(3)
        client.on_message("p2", reply("ghost-1", {"p2", "p1"}))
        assert client.adopted == {}
        assert client.late_replies == 1

    def test_outstanding_counts(self):
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        assert client.outstanding == 1
        client.on_message("p2", reply(rid, {"p2", "p1"}))
        assert client.outstanding == 0

    def test_adopt_callback_fires(self):
        sim, network, client, group = build(3)
        seen: List[Any] = []
        client.on_adopt = seen.append
        rid = client.submit(("incr",))
        client.on_message("p2", reply(rid, {"p2", "p1"}))
        assert [a.rid for a in seen] == [rid]

    def test_latency_measured_from_submit(self):
        sim, network, client, group = build(3)
        rid = client.submit(("incr",))
        sim.run(until=7.0)
        client.on_message("p2", reply(rid, {"p2", "p1"}))
        assert client.adopted[rid].latency == 7.0
