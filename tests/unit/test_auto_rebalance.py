"""Unit tests for the auto-triggered rebalancer policy.

The ROADMAP open item: rebalances used to fire only at scheduled times;
now :meth:`RebalanceCoordinator.enable_auto_trigger` polls the decayed
per-key load counters and fires a plan when the hot/cold shard imbalance
stays above a threshold for a *sustained* window.  These tests drive the
policy with a manual clock and a fake shard (adoptions synthesized
inline), so every tick and strike is deterministic and inspectable --
including the shifting-hot-set case where the trigger must chase the
*current* Zipf head across shards.
"""

import pytest

from repro.core.loadtrack import DecayingKeyLoad
from repro.core.client import AdoptedReply
from repro.sharding.rebalance import RebalanceCoordinator
from repro.sharding.router import RoutingTable, make_router
from repro.statemachine.base import OpResult

pytestmark = pytest.mark.unit

KEYS = tuple(f"k{i:03d}" for i in range(16))


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _FakeEnv:
    """set_timer collects callbacks for manual firing; trace records."""

    def __init__(self, clock: ManualClock) -> None:
        self.clock = clock
        self.timers = []
        self.traced = []

    @property
    def now(self) -> float:
        return self.clock.now

    def set_timer(self, delay, callback):
        self.timers.append((self.clock.now + delay, callback))

    def fire_due(self) -> None:
        # Drain: a fired callback may schedule another due timer (the
        # fake shard's same-instant adoptions chain prepare -> install
        # -> forget).
        while True:
            due = [t for t in self.timers if t[0] <= self.clock.now]
            if not due:
                return
            self.timers = [t for t in self.timers if t[0] > self.clock.now]
            for _when, callback in due:
                callback()

    def trace(self, kind, **fields):
        self.traced.append((kind, fields))


class _FakeShardClient:
    """A sharded-client stand-in that adopts every mig_* op instantly.

    ``submit_to_shard`` synthesizes the deterministic reply the real
    shard would eventually adopt (prepare exports a token state, install
    acks, forget acks), handed back through ``on_adopt`` synchronously --
    so a whole migration transaction completes within one policy tick
    and the *second* trigger can be tested without a simulator.
    """

    def __init__(self, env, key_load) -> None:
        self.pid = "rb-fake"
        self.env = env
        self.key_load = key_load
        self.crashed = False
        self.on_adopt = None
        self._counter = 0
        self.submitted = []

    def submit_to_shard(self, op, shard):
        self._counter += 1
        rid = f"{self.pid}-{self._counter}"
        self.submitted.append((op, shard))
        name = op[0]
        if name == "mig_prepare":
            value = ("exported", ("present", "v"))
        elif name == "mig_install":
            value = ("installed",)
        elif name == "split_open":
            # ("split_open", sid, key, frags, dsts): echo the escrow
            # plan the real source shard would ship.
            sid, frags, dsts = op[1], op[3], op[4]
            value = (
                "split",
                tuple(
                    (f"{sid}.{i}", frags[i], dsts[i], "part")
                    for i in range(1, len(frags))
                ),
            )
        elif name == "split_close":
            value = ("merged", "state")
        else:  # mig_forget / mig_status on this happy path
            value = ("forgotten",)
        reply = AdoptedReply(
            rid=rid, value=OpResult(ok=True, value=value), position=1,
            epoch=0, weight=("s",), conservative=True,
            submit_time=self.env.now, adopt_time=self.env.now,
        )
        # Deliver the adoption after the coordinator records the stage
        # (the real client adopts asynchronously too).
        self.env.set_timer(0.0, lambda: self.on_adopt(reply))
        return rid


def make_coordinator(n_shards=2, **auto):
    clock = ManualClock()
    env = _FakeEnv(clock)
    load = DecayingKeyLoad(half_life=100.0, clock=clock)
    client = _FakeShardClient(env, load)
    authority = RoutingTable(make_router("range", n_shards, KEYS))
    coordinator = RebalanceCoordinator(
        client, authority, observed_clients=[client]
    )
    coordinator.enable_auto_trigger(
        check_interval=auto.pop("check_interval", 10.0),
        ratio=auto.pop("ratio", 3.0),
        sustain=auto.pop("sustain", 2),
        min_load=auto.pop("min_load", 10.0),
        max_moves=auto.pop("max_moves", 2),
        split_n=auto.pop("split_n", 0),
    )
    return clock, env, load, authority, coordinator


def tick(clock, env, dt=10.0):
    clock.now += dt
    env.fire_due()


class TestAutoTriggerPolicy:
    def test_balanced_load_never_triggers(self):
        clock, env, load, _authority, coordinator = make_coordinator()
        for key in KEYS:
            load.record(key, weight=10.0)
        for _ in range(5):
            tick(clock, env)
        assert coordinator.auto_rebalances == 0
        assert coordinator.journal == []

    def test_quiet_cluster_never_triggers(self):
        # All-zero counters: the min_load floor keeps inf ratios from
        # firing on noise.
        clock, env, _load, _authority, coordinator = make_coordinator()
        for _ in range(5):
            tick(clock, env)
        assert coordinator.auto_rebalances == 0

    def test_sustained_imbalance_fires_after_strike_window(self):
        clock, env, load, authority, coordinator = make_coordinator(sustain=3)
        # A hot *set* on shard 0 (each key lighter than the hot-cold
        # gap, so the greedy planner has movable candidates) vs a cold
        # pulse on shard 1.
        hot_set = {KEYS[0]: 80.0, KEYS[1]: 40.0, KEYS[2]: 40.0, KEYS[3]: 40.0}

        def heat(scale=1.0):
            for key, weight in hot_set.items():
                load.record(key, weight=weight * scale)
            load.record(KEYS[-1], weight=10.0 * scale)

        heat()
        tick(clock, env)  # strike 1
        assert coordinator.auto_rebalances == 0
        heat()
        tick(clock, env)  # strike 2
        assert coordinator.auto_rebalances == 0
        heat()
        tick(clock, env)  # strike 3 -> fire
        assert coordinator.auto_rebalances == 1
        moved = [record.key for record in coordinator.journal]
        assert KEYS[0] in moved  # the heaviest movable key leads the plan
        # The fake shard adopted every step: the moves are fully done
        # and the authority routes every moved key to the cold shard.
        assert all(record.terminal for record in coordinator.journal)
        assert authority.shard_of(KEYS[0]) == 1

    def test_momentary_spike_resets_the_strikes(self):
        clock, env, load, _authority, coordinator = make_coordinator(sustain=2)
        hot = KEYS[0]
        load.record(hot, weight=200.0)
        load.record(KEYS[-1], weight=10.0)
        tick(clock, env)  # strike 1
        # The spike decays away (half-life 100, tick 10 -> wait long).
        clock.now += 500.0
        load.record(KEYS[-1], weight=50.0)  # shard 1 now carries the load
        load.record(KEYS[0], weight=40.0)  # near-balanced
        tick(clock, env)  # ratio below threshold: strikes reset
        load.record(hot, weight=200.0)
        tick(clock, env)  # strike 1 again, not 2: no fire
        assert coordinator.auto_rebalances == 0

    def test_shifting_hot_set_chases_the_current_head(self):
        # Phase 1: KEYS[0] (shard 0) is the head -> first auto rebalance
        # moves it.  Phase 2: traffic shifts to KEYS[-1]'s neighbour on
        # shard 1 while the old head decays -> the *second* trigger must
        # plan the new head, not re-litigate the stale one.
        clock, env, load, authority, coordinator = make_coordinator(
            sustain=2, max_moves=1
        )
        old_head = KEYS[0]

        def heat_phase1():
            load.record(old_head, weight=100.0)  # heaviest movable key
            load.record(KEYS[1], weight=60.0)
            load.record(KEYS[2], weight=60.0)
            load.record(KEYS[-1], weight=20.0)  # shard 1 pulse

        heat_phase1()
        tick(clock, env)
        heat_phase1()
        tick(clock, env)  # fires: old_head 0 -> 1
        assert coordinator.auto_rebalances == 1
        assert coordinator.journal[0].key == old_head
        assert authority.shard_of(old_head) == 1

        # The hot set shifts: ten half-lives silence the old head, a new
        # head heats up on shard 1 (which, under the *current* routing,
        # also hosts the migrated old head).
        clock.now += 1000.0
        new_head = KEYS[-1]

        def heat_phase2():
            load.record(new_head, weight=100.0)
            load.record(KEYS[-2], weight=60.0)
            load.record(KEYS[-3], weight=60.0)
            load.record(KEYS[1], weight=20.0)  # shard 0 keeps a pulse

        heat_phase2()
        tick(clock, env)
        heat_phase2()
        tick(clock, env)  # fires again, for the new head
        assert coordinator.auto_rebalances == 2
        assert coordinator.journal[-1].key == new_head
        assert authority.shard_of(new_head) == 0

    def test_no_fire_while_a_migration_is_active(self):
        clock, env, load, _authority, coordinator = make_coordinator(sustain=1)
        # Hold the coordinator busy with a manually enqueued move that
        # never completes (sever the adoption callback first).
        coordinator.client.on_adopt = lambda reply: None
        coordinator.migrate(KEYS[2], 1)
        env.fire_due()
        assert not coordinator.done
        hot = KEYS[0]
        load.record(hot, weight=500.0)
        load.record(KEYS[-1], weight=10.0)
        tick(clock, env)
        tick(clock, env)
        assert coordinator.auto_rebalances == 0  # deferred, not stacked
        # Deferred means the evidence is *kept*: the strikes survive, so
        # the plan fires on the first over-threshold tick after the
        # active migration drains instead of re-earning the window.
        assert coordinator._auto_strikes >= coordinator._auto["sustain"]

    def test_parameter_validation(self):
        _clock, _env, _load, _authority, coordinator = make_coordinator()
        with pytest.raises(ValueError):
            coordinator.enable_auto_trigger(check_interval=0.0)
        with pytest.raises(ValueError):
            coordinator.enable_auto_trigger(ratio=1.0)
        with pytest.raises(ValueError):
            coordinator.enable_auto_trigger(sustain=0)

    def test_imbalance_ratio_shapes(self):
        _clock, _env, load, _authority, coordinator = make_coordinator()
        assert coordinator.imbalance_ratio({})[0] == 1.0
        load.record(KEYS[0], weight=10.0)
        ratio, hot, cold = coordinator.imbalance_ratio()
        assert ratio == float("inf") and hot > 0 and cold == 0.0
        load.record(KEYS[-1], weight=5.0)
        ratio, _hot, _cold = coordinator.imbalance_ratio()
        assert ratio == pytest.approx(2.0)


def make_manual_coordinator(n_shards=2):
    """A coordinator with no auto trigger: plan_moves is called directly."""
    clock = ManualClock()
    env = _FakeEnv(clock)
    load = DecayingKeyLoad(half_life=100.0, clock=clock)
    client = _FakeShardClient(env, load)
    authority = RoutingTable(make_router("range", n_shards, KEYS))
    coordinator = RebalanceCoordinator(
        client, authority, observed_clients=[client]
    )
    return env, authority, coordinator


class TestPlanStability:
    """plan_moves must not churn: near-equal shards stay put, and a
    planned move is never immediately planned back (ping-pong).

    The guard is the gap test -- a candidate key must carry *less* load
    than the current hot-cold gap -- which makes every accepted move
    strictly shrink the gap, so re-planning after the move has nothing
    left to do.  Range routing over KEYS puts k000-k007 on shard 0 and
    k008-k015 on shard 1.
    """

    def test_near_equal_shards_plan_nothing(self):
        _env, _authority, coordinator = make_manual_coordinator()
        load = {KEYS[0]: 10.0, KEYS[1]: 9.0, KEYS[8]: 10.0, KEYS[9]: 8.0}
        # 19 vs 18: every candidate outweighs the gap of 1, even with
        # plenty of move budget.
        assert coordinator.plan_moves(load, max_moves=8) == []

    def test_plan_stops_before_inverting_the_imbalance(self):
        _env, _authority, coordinator = make_manual_coordinator()
        load = {KEYS[0]: 4.0, KEYS[1]: 4.0, KEYS[8]: 1.0}
        # 8 vs 1: moving one 4 lands at 4 vs 5, and the new gap of 1
        # admits no candidate -- the plan must stop at one move rather
        # than oscillate keys across the near-equal shards.
        plan = coordinator.plan_moves(load, max_moves=8)
        assert plan == [(KEYS[0], 0, 1)]

    def test_replanning_after_the_move_is_empty(self):
        _env, authority, coordinator = make_manual_coordinator()
        load = {KEYS[0]: 9.0, KEYS[1]: 5.0, KEYS[8]: 6.0}
        plan = coordinator.plan_moves(load, max_moves=8)
        assert plan == [(KEYS[1], 0, 1)]
        # Commit the move and re-plan against the *same* load snapshot:
        # 9 vs 11 leaves a gap of 2 with no lighter candidate, so the
        # moved key is not bounced home.
        authority.move(KEYS[1], 1)
        assert coordinator.plan_moves(load, max_moves=8) == []

    def test_plan_is_deterministic(self):
        _env, _authority, coordinator = make_manual_coordinator()
        load = {KEYS[0]: 12.0, KEYS[1]: 7.0, KEYS[2]: 7.0, KEYS[8]: 3.0}
        first = coordinator.plan_moves(load, max_moves=8)
        assert first == coordinator.plan_moves(load, max_moves=8)

    def test_single_dominant_key_defeats_the_planner(self):
        _env, _authority, coordinator = make_manual_coordinator()
        load = {KEYS[0]: 100.0, KEYS[8]: 5.0}
        # The hot key outweighs the gap: moving it would only swap which
        # shard is hot.  An empty plan here is the auto-split trigger's
        # precondition.
        assert coordinator.plan_moves(load, max_moves=8) == []


class TestAutoSplit:
    def test_dominant_key_splits_when_the_plan_is_defeated(self):
        clock, env, load, authority, coordinator = make_coordinator(
            sustain=2, split_n=2
        )
        hot = KEYS[0]

        def heat():
            load.record(hot, weight=500.0)
            load.record(KEYS[-1], weight=10.0)

        heat()
        tick(clock, env)  # strike 1
        heat()
        tick(clock, env)  # strike 2: plan is empty -> split instead
        assert coordinator.auto_rebalances == 0
        assert coordinator.auto_splits == 1
        assert coordinator.splits_committed == 1
        placements = authority.fragments_of(hot)
        assert placements is not None and len(placements) == 2
        assert [kind for kind, _f in env.traced if kind == "split_auto"]

    def test_fragments_are_never_split_again(self):
        clock, env, load, authority, coordinator = make_coordinator(
            sustain=1, split_n=2
        )
        hot = KEYS[0]
        load.record(hot, weight=500.0)
        load.record(KEYS[-1], weight=10.0)
        tick(clock, env)
        assert coordinator.auto_splits == 1
        frag0 = authority.fragments_of(hot)[0][0]
        # The heat follows a fragment now; sustained imbalance on it
        # must not cascade into splitting the fragment itself.
        for _ in range(3):
            load.record(frag0, weight=500.0)
            load.record(KEYS[-1], weight=10.0)
            tick(clock, env)
        assert coordinator.auto_splits == 1
        assert authority.fragments_of(frag0) is None

    def test_split_n_validation(self):
        _clock, _env, _load, _authority, coordinator = make_coordinator()
        with pytest.raises(ValueError):
            coordinator.enable_auto_trigger(split_n=1)
        with pytest.raises(ValueError):
            coordinator.enable_auto_trigger(split_n=-2)
