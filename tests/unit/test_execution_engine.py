"""Unit tests for the conflict-aware execution engine (white-box).

Scenario-level behaviour (digest equivalence, undo under phase 2, B13
scaling) is covered by the property tests and benchmarks; these tests pin
the engine's scheduling mechanics directly against a bare simulator:
lane occupancy, conflict chaining, global fencing, read fencing, the
cancel paths, and the undo log's pending/resolve lifecycle.
"""

import pytest

from repro.core.execution import ExecutionEngine
from repro.sim.loop import Simulator
from repro.statemachine.kvstore import KVStoreMachine
from repro.statemachine.undo import UndoLog

pytestmark = pytest.mark.unit


def make_engine(lanes=2, cost=1.0):
    sim = Simulator(seed=0)
    machine = KVStoreMachine()
    undo_log = UndoLog()
    engine = ExecutionEngine(
        machine, lanes=lanes, cost=cost, timer=sim.schedule, undo_log=undo_log
    )
    return sim, machine, undo_log, engine


class TestInlineFastPath:
    def test_zero_cost_executes_synchronously(self):
        sim, machine, undo_log, engine = make_engine(cost=0.0)
        seen = []
        engine.submit("r1", ("set", "x", 1), lambda r, lane: seen.append(r), True)
        assert seen and seen[0].ok  # before any event ran
        assert machine.state() == {"x": 1}
        assert engine.inline and engine.idle and engine.backlog == 0
        # The undo entry is resolved immediately (no pending phase).
        assert undo_log.tags == ["r1"]
        assert undo_log.undo_last("r1") is True
        assert machine.state() == {}

    def test_zero_cost_reads_fire_synchronously(self):
        sim, machine, _undo, engine = make_engine(cost=0.0)
        fired = []
        engine.submit_read(("get", "x"), lambda: fired.append(True))
        assert fired

    def test_cancel_is_a_noop_inline(self):
        _sim, _machine, _undo, engine = make_engine(cost=0.0)
        assert engine.cancel("anything") is True


class TestLanesAndConflicts:
    def test_disjoint_ops_use_all_lanes(self):
        sim, machine, _undo, engine = make_engine(lanes=3, cost=1.0)
        done = []
        for i in range(6):
            engine.submit(
                f"r{i}", ("set", f"k{i}", i), lambda r, lane: done.append(lane), True
            )
        assert engine.backlog == 6
        sim.run()
        assert engine.idle and len(done) == 6
        assert engine.max_concurrency == 3
        # 6 disjoint ops over 3 lanes at cost 1.0 finish at t=2, not t=6.
        assert sim.now == pytest.approx(2.0)

    def test_conflicting_ops_serialize_in_delivery_order(self):
        sim, machine, _undo, engine = make_engine(lanes=4, cost=1.0)
        order = []
        for i in range(4):
            engine.submit(
                f"r{i}", ("set", "k", i), lambda r, lane, i=i: order.append(i), True
            )
        sim.run()
        assert order == [0, 1, 2, 3]
        assert engine.max_concurrency == 1
        assert sim.now == pytest.approx(4.0)  # a serial chain despite 4 lanes
        assert machine.state() == {"k": 3}  # last delivered write wins

    def test_global_footprint_fences_the_pipeline(self):
        sim, machine, _undo, engine = make_engine(lanes=4, cost=1.0)
        order = []
        engine.submit("a", ("set", "x", 1), lambda r, lane: order.append("a"), True)
        engine.submit("b", ("set", "y", 2), lambda r, lane: order.append("b"), True)
        # ("keys",) has no keys_of footprint -> global: waits for x and
        # y, and the later z-write waits for it.
        engine.submit("g", ("keys",), lambda r, lane: order.append(("g", r.value)), True)
        engine.submit("c", ("set", "z", 3), lambda r, lane: order.append("c"), True)
        sim.run()
        assert order[:2] in (["a", "b"], ["b", "a"])
        assert order[2] == ("g", ("x", "y"))  # the keys op saw x,y but not z
        assert order[3] == "c"

    def test_multi_key_op_joins_both_chains(self):
        sim, machine, _undo, engine = make_engine(lanes=4, cost=1.0)
        order = []
        engine.submit("a", ("set", "x", 1), lambda r, lane: order.append("a"), True)
        engine.submit("b", ("set", "y", 2), lambda r, lane: order.append("b"), True)
        # cas on x plus a set on y via two entries... use a synthetic
        # multi-key footprint through a transfer-style op on the kv
        # machine: emulate with cas(x) after, then an op on both via
        # ("keys",) is global -- instead check a second-wave x op only
        # starts after the first x op even when lanes are free.
        engine.submit("c", ("cas", "x", 1, 9), lambda r, lane: order.append("c"), True)
        sim.run()
        assert order.index("a") < order.index("c")
        assert machine.state() == {"x": 9, "y": 2}


class TestReads:
    def test_read_waits_for_conflicting_write_only(self):
        sim, machine, _undo, engine = make_engine(lanes=2, cost=1.0)
        events = []
        engine.submit("w1", ("set", "x", 1), lambda r, lane: events.append("w1"), True)
        engine.submit_read(("get", "x"), lambda: events.append(("rx", machine.state().get("x"))))
        engine.submit_read(("get", "y"), lambda: events.append("ry"))  # no conflict: now
        assert events == ["ry"]
        sim.run()
        assert events == ["ry", "w1", ("rx", 1)]

    def test_reads_do_not_block_writes(self):
        sim, machine, _undo, engine = make_engine(lanes=2, cost=1.0)
        events = []
        engine.submit("w1", ("set", "x", 1), lambda r, lane: events.append("w1"), True)
        engine.submit_read(("get", "x"), lambda: events.append("read"))
        engine.submit("w2", ("set", "x", 2), lambda r, lane: events.append("w2"), True)
        sim.run()
        # w2 chains on w1 (conflict), not on the read; the read fires at
        # w1's completion.
        assert events == ["w1", "read", "w2"]

    def test_global_read_waits_for_everything(self):
        sim, machine, _undo, engine = make_engine(lanes=4, cost=1.0)
        events = []
        engine.submit("w1", ("set", "x", 1), lambda r, lane: events.append("w1"), True)
        engine.submit("w2", ("set", "y", 2), lambda r, lane: events.append("w2"), True)
        engine.submit_read(("keys",), lambda: events.append(tuple(sorted(machine.state()))))
        sim.run()
        assert events[-1] == ("x", "y")


class TestCancelFencing:
    def test_cancel_waiting_entry_never_executes(self):
        sim, machine, undo_log, engine = make_engine(lanes=2, cost=1.0)
        done = []
        engine.submit("w1", ("set", "k", 1), lambda r, lane: done.append("w1"), True)
        engine.submit("w2", ("set", "k", 2), lambda r, lane: done.append("w2"), True)
        assert engine.cancel("w2") is False  # never started
        assert undo_log.undo_last("w2") is False  # pending: no state effect
        sim.run()
        assert done == ["w1"]
        assert machine.state() == {"k": 1}
        assert engine.idle

    def test_cancel_in_service_frees_the_lane(self):
        sim, machine, undo_log, engine = make_engine(lanes=1, cost=5.0)
        done = []
        engine.submit("w1", ("set", "k", 1), lambda r, lane: done.append("w1"), True)
        # The follow-up rides as settled work (undoable=False) so the
        # undo log holds only w1 -- undo_last is suffix-only.
        engine.submit("w2", ("set", "j", 2), lambda r, lane: done.append("w2"), False)
        sim.run(until=1.0)  # w1 in service, w2 queued for the single lane
        assert engine.cancel("w1") is False
        assert undo_log.undo_last("w1") is False
        sim.run()
        assert done == ["w2"]  # the lane was handed to w2
        assert machine.state() == {"j": 2}
        assert engine.cancelled_in_flight == 1

    def test_cancel_completed_entry_defers_to_undo_log(self):
        sim, machine, undo_log, engine = make_engine(lanes=1, cost=1.0)
        engine.submit("w1", ("set", "k", 1), lambda r, lane: None, True)
        sim.run()
        assert machine.state() == {"k": 1}
        assert engine.cancel("w1") is True  # executed: revert via the log
        assert undo_log.undo_last("w1") is True
        assert machine.state() == {}

    def test_cancelled_tail_still_chains_later_ops_behind_live_older_ones(self):
        # A (old, slow, live) <- B (cancelled tail) ; C enqueued later
        # must chain behind A, not start immediately because the tail B
        # is dead (the prev-walk in _live_tail).
        sim, machine, undo_log, engine = make_engine(lanes=2, cost=5.0)
        order = []
        engine.submit("a", ("set", "k", 1), lambda r, lane: order.append("a"), True)
        engine.submit("b", ("set", "k", 2), lambda r, lane: order.append("b"), True)
        sim.run(until=1.0)  # a in service, b waiting on a
        assert engine.cancel("b") is False
        assert undo_log.undo_last("b") is False
        engine.submit("c", ("set", "k", 3), lambda r, lane: order.append("c"), True)
        sim.run()
        assert order == ["a", "c"]
        assert machine.state() == {"k": 3}

    def test_cancelled_global_does_not_hide_live_keyed_writes(self):
        # Regression: W0 (in lane) and W1 (queued) on key k, then a
        # global op G; Bad = [G] cancels G while W0/W1 are in flight.
        # A redo write W2 on k must still chain behind W1 -- losing that
        # fence let W2 race W1 and finish with the wrong final value.
        sim, machine, undo_log, engine = make_engine(lanes=4, cost=1.0)
        order = []
        engine.submit("w0", ("set", "k", "v0"), lambda r, lane: order.append("w0"), True)
        engine.submit("w1", ("set", "k", "v1"), lambda r, lane: order.append("w1"), True)
        engine.submit("g", ("keys",), lambda r, lane: order.append("g"), True)
        assert engine.cancel("g") is False
        assert undo_log.undo_last("g") is False
        engine.submit("w2", ("set", "k", "v2"), lambda r, lane: order.append("w2"), True)
        assert engine.max_concurrency == 1  # w2 never ran beside w1
        sim.run()
        assert order == ["w0", "w1", "w2"]
        assert machine.state() == {"k": "v2"}  # delivered order, not race order

    def test_global_after_cancelled_global_still_fences_older_writes(self):
        sim, machine, undo_log, engine = make_engine(lanes=4, cost=1.0)
        order = []
        engine.submit("w0", ("set", "k", "v0"), lambda r, lane: order.append("w0"), True)
        engine.submit("g1", ("keys",), lambda r, lane: order.append("g1"), True)
        assert engine.cancel("g1") is False
        assert undo_log.undo_last("g1") is False
        # A fresh global op must still wait for the pre-cancel write.
        engine.submit(
            "g2", ("keys",), lambda r, lane: order.append(("g2", r.value)), True
        )
        sim.run()
        assert order == ["w0", ("g2", ("k",))]

    def test_read_refenced_past_cancelled_global_waits_for_older_write(self):
        sim, machine, _undo, engine = make_engine(lanes=4, cost=1.0)
        events = []
        engine.submit("w0", ("set", "x", 1), lambda r, lane: events.append("w0"), True)
        engine.submit("g", ("keys",), lambda r, lane: events.append("g"), True)
        engine.submit_read(("get", "x"), lambda: events.append(("read", machine.state().get("x"))))
        assert engine.cancel("g") is False
        assert events == []  # the re-fenced read still waits on w0
        sim.run()
        assert events == ["w0", ("read", 1)]

    def test_cancel_releases_waiting_reads(self):
        sim, machine, _undo, engine = make_engine(lanes=1, cost=5.0)
        events = []
        engine.submit("w1", ("set", "x", 1), lambda r, lane: events.append("w1"), True)
        engine.submit("w2", ("set", "x", 2), lambda r, lane: events.append("w2"), True)
        engine.submit_read(("get", "x"), lambda: events.append("read"))
        assert engine.cancel("w2") is False
        assert events == []  # the read still waits on w1 (in service)
        sim.run()
        assert events == ["w1", "read"]


class TestChargedInverses:
    def test_inverse_occupies_a_lane_for_the_op_cost(self):
        sim, machine, undo_log, engine = make_engine(lanes=1, cost=2.0)
        engine.submit("w1", ("set", "x", 1), lambda r, lane: None, True)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert machine.state() == {"x": 1}
        undo = undo_log.pop_last("w1")
        assert undo is not None
        lanes = []
        engine.submit_inverse("w1", ("set", "x", 1), undo, lanes.append)
        assert machine.state() == {"x": 1}  # not undone at submit time
        assert engine.backlog == 1  # quiescence waits for the inverse
        sim.run()
        assert sim.now == pytest.approx(4.0)  # charged, not free
        assert machine.state() == {}
        assert lanes == [0]
        assert engine.inverses_executed == 1
        assert engine.executed == 1  # forward executions only
        assert engine.idle

    def test_inverse_weight_follows_exec_cost_of(self):
        # ("keys",) weighs 2x on the kv machine: its inverse does too.
        sim, machine, undo_log, engine = make_engine(lanes=1, cost=1.0)
        engine.submit("g", ("keys",), lambda r, lane: None, True)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        undo = undo_log.pop_last("g")
        engine.submit_inverse("g", ("keys",), undo)
        sim.run()
        assert sim.now == pytest.approx(4.0)

    def test_inline_inverse_runs_synchronously_and_uncounted(self):
        sim, machine, undo_log, engine = make_engine(cost=0.0)
        engine.submit("w1", ("set", "x", 1), lambda r, lane: None, True)
        undo = undo_log.pop_last("w1")
        fired = []
        engine.submit_inverse("w1", ("set", "x", 1), undo, fired.append)
        assert machine.state() == {}  # undone before returning
        assert fired == []  # inline path: no charged completion to trace
        assert engine.inverses_executed == 0

    def test_redo_chains_behind_conflicting_inverse(self):
        sim, machine, undo_log, engine = make_engine(lanes=4, cost=1.0)
        order = []
        engine.submit("w1", ("set", "x", 1), lambda r, lane: order.append("w1"), True)
        sim.run()
        undo = undo_log.pop_last("w1")
        engine.submit_inverse(
            "w1", ("set", "x", 1), undo, lambda lane: order.append("undo")
        )
        # The New-epoch redo on the same key must wait for the inverse.
        engine.submit("w2", ("set", "x", 2), lambda r, lane: order.append("w2"), False)
        sim.run()
        assert order == ["w1", "undo", "w2"]
        assert machine.state() == {"x": 2}

    def test_inverse_does_not_shadow_reregistered_forward_entry(self):
        # The inverse shares its rid with the forward op; a re-delivered
        # forward entry under the same rid must stay cancellable while
        # the inverse drains.
        sim, machine, undo_log, engine = make_engine(lanes=2, cost=1.0)
        engine.submit("r1", ("set", "x", 1), lambda r, lane: None, True)
        sim.run()
        undo = undo_log.pop_last("r1")
        engine.submit_inverse("r1", ("set", "x", 1), undo)
        engine.submit("r1", ("set", "x", 9), lambda r, lane: None, True)
        sim.run()
        assert machine.state() == {"x": 9}
        # The forward entry completed and left the rid map; cancel sees
        # "already executed", not a stale inverse entry.
        assert engine.cancel("r1") is True
        assert undo_log.undo_last("r1") is True
        assert machine.state() == {}


class TestUndoLogLifecycle:
    def test_resolve_after_commit_is_ignored(self):
        log = UndoLog()
        log.push_pending("r1")
        log.commit()
        log.resolve("r1", lambda: (_ for _ in ()).throw(AssertionError("ran")))
        assert len(log) == 0

    def test_pending_keeps_delivery_order_alignment(self):
        log = UndoLog()
        log.push_pending("r1")
        log.push("r2", lambda: None)
        log.push_pending("r3")
        assert log.tags == ["r1", "r2", "r3"]
        calls = []
        log.resolve("r1", lambda: calls.append("u1"))
        assert log.undo_last("r3") is False
        assert log.undo_last("r2") is True
        assert log.undo_last("r1") is True
        assert calls == ["u1"]

    def test_out_of_order_undo_still_fails_loudly(self):
        log = UndoLog()
        log.push_pending("r1")
        log.push_pending("r2")
        with pytest.raises(RuntimeError, match="out-of-order"):
            log.undo_last("r1")


class TestValidation:
    def test_bad_parameters_rejected(self):
        machine = KVStoreMachine()
        with pytest.raises(ValueError):
            ExecutionEngine(machine, lanes=0)
        with pytest.raises(ValueError):
            ExecutionEngine(machine, cost=-1.0)

    def test_oar_config_validates_exec_knobs(self):
        from repro.core.server import OARConfig

        with pytest.raises(ValueError):
            OARConfig(exec_cost=-0.5)
        with pytest.raises(ValueError):
            OARConfig(exec_lanes=0)
