"""Unit tests for OAR server internals: the edge cases of Fig. 6.

Integration tests exercise whole runs; these tests poke the server's
task machinery directly -- stale/future epoch handling, sequencer
authentication, ordering-before-request races, and the phase-2
bookkeeping that the pseudo-code leaves implicit.
"""

from typing import List

import pytest

from repro.core.messages import PhaseII, Reply, Request, SeqOrder
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.unit



def build(n: int = 3, config: OARConfig = None, seed: int = 0):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n)]
    servers: List[OARServer] = []
    for pid in group:
        server = OARServer(
            pid, group, CounterMachine(), ScriptedFailureDetector(),
            config or OARConfig(),
        )
        servers.append(server)
        network.add_process(server)

    class FakeClient:
        def __init__(self, pid):
            self.pid = pid
            self.replies = []

        def on_message(self, src, payload):
            self.replies.append((src, payload))

    from repro.sim.process import Process

    class ClientProcess(Process):
        def __init__(self):
            super().__init__("c1")
            self.replies = []

        def on_message(self, src, payload):
            if isinstance(payload, Reply):
                self.replies.append((src, payload))

    client = ClientProcess()
    network.add_process(client)
    network.start_all()
    return sim, network, servers, client


def request(n: int) -> Request:
    return Request(rid=f"c1-{n}", client="c1", op=("incr",))


class TestConstruction:
    def test_pid_must_be_group_member(self):
        with pytest.raises(ValueError, match="not in server group"):
            OARServer(
                "outsider", ["p1"], CounterMachine(),
                ScriptedFailureDetector(), OARConfig(),
            )

    def test_initial_state_matches_fig6_lines_1_to_5(self):
        _sim, _network, servers, _client = build()
        server = servers[0]
        assert len(server.r_delivered) == 0
        assert len(server.a_delivered) == 0
        assert len(server.o_delivered) == 0
        assert server.epoch == 0
        assert server.phase == 1
        assert server.current_sequencer == "p1"
        assert server.majority == 2


class TestTask1b:
    def test_order_from_non_sequencer_is_ignored(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task0_request(request(0))
        p2._task1b_order("p3", SeqOrder(0, ("c1-0",)))  # p3 is not s
        assert len(p2.o_delivered) == 0

    def test_stale_epoch_order_dropped(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2.epoch = 3
        p2._task0_request(request(0))
        p2._task1b_order("p1", SeqOrder(1, ("c1-0",)))
        assert len(p2.o_delivered) == 0

    def test_future_epoch_order_buffered(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task0_request(request(0))
        p2._task1b_order("p2", SeqOrder(2, ("c1-0",)))
        assert len(p2.o_delivered) == 0
        assert 2 in p2._future_orders

    def test_order_before_request_body_waits(self):
        # The ordering message can overtake the request (relay race);
        # delivery must wait for the body, in order.
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task1b_order("p1", SeqOrder(0, ("c1-0", "c1-1")))
        assert len(p2.o_delivered) == 0
        p2._task0_request(request(1))  # second body first: still blocked
        assert len(p2.o_delivered) == 0
        p2._task0_request(request(0))  # head arrives: both drain, in order
        assert p2.o_delivered == ("c1-0", "c1-1")

    def test_duplicate_rid_in_order_ignored(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task0_request(request(0))
        p2._task1b_order("p1", SeqOrder(0, ("c1-0",)))
        p2._task1b_order("p1", SeqOrder(0, ("c1-0",)))
        assert p2.o_delivered == ("c1-0",)
        assert p2.machine.fingerprint() == 1

    def test_weight_is_s_for_sequencer_and_ps_for_others(self):
        sim, _network, servers, client = build()
        # Inject the request body at every server (bypassing R-multicast),
        # then let the sequencer's ordering propagate.
        for server in reversed(servers):
            server._task0_request(request(0))
        sim.run()
        weights = {
            src: payload.weight
            for src, payload in client.replies
            if payload.rid == "c1-0"
        }
        assert weights["p1"] == frozenset({"p1"})
        assert weights["p2"] == frozenset({"p1", "p2"})
        assert weights["p3"] == frozenset({"p1", "p3"})


class TestTask2:
    def test_phase2_for_current_epoch_only_once(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task2_phase2(PhaseII(0, "suspicion"))
        assert p2.phase == 2
        # A second PhaseII for the same epoch is absorbed.
        p2._task2_phase2(PhaseII(0, "suspicion"))
        assert p2.phase == 2

    def test_stale_phase2_ignored(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2.epoch = 2
        p2._task2_phase2(PhaseII(0, "suspicion"))
        assert p2.phase == 1

    def test_future_phase2_buffered(self):
        _sim, _network, servers, _client = build()
        p2 = servers[1]
        p2._task2_phase2(PhaseII(3, "suspicion"))
        assert p2.phase == 1
        assert 3 in p2._future_phase2

    def test_suspicion_of_non_sequencer_does_not_trigger(self):
        sim, network, servers, _client = build()
        p2 = servers[1]
        p2.fd.force_suspect("p3")
        sim.run(until=10.0)
        assert p2.phase == 1
        assert network.trace.events(kind="phase2_request") == []

    def test_suspicion_of_sequencer_triggers_phase2_broadcast(self):
        sim, network, servers, _client = build()
        for server in servers[1:]:
            server.fd.force_suspect("p1")
        sim.run(max_events=100_000)
        # Both suspecting servers requested; everyone ran exactly one
        # conservative phase and moved to epoch 1 with the next sequencer.
        assert len(network.trace.events(kind="phase2_request")) == 2
        for server in servers:
            assert server.epoch == 1
            assert server.phase == 1
            assert server.current_sequencer == "p2"

    def test_rotation_disabled_keeps_sequencer(self):
        sim, network, servers, _client = build(
            config=OARConfig(rotate_sequencer=False)
        )
        for server in servers[1:]:
            server.fd.force_suspect("p1")
        # p1 is alive here; it also runs phase 2 when the PhaseII arrives.
        sim.run(max_events=100_000)
        # Epoch advanced but the (still suspected) p1 stays sequencer, so
        # the new epoch immediately re-enters phase 2 at the suspecting
        # servers -- run a few more epochs to observe the treadmill.
        assert all(s.current_sequencer == "p1" for s in servers)


class TestEpochSettlement:
    def run_crash_recovery(self):
        sim, network, servers, client = build()
        # Inject the request body everywhere (bypassing R-multicast --
        # its relay guarantees are tested elsewhere).
        for server in servers:
            server._task0_request(request(0))
        sim.run(until=5.0)
        network.crash("p1")
        for server in servers[1:]:
            server.fd.force_suspect("p1")
        sim.run(max_events=200_000)
        return sim, network, servers, client

    def test_survivors_settle_and_clear_o_delivered(self):
        _sim, _network, servers, _client = self.run_crash_recovery()
        for server in servers[1:]:
            assert server.epoch == 1
            assert len(server.o_delivered) == 0
            assert server.a_delivered == ("c1-0",)
            assert server.settled_order == server.current_order

    def test_undo_log_empty_after_settlement(self):
        _sim, _network, servers, _client = self.run_crash_recovery()
        for server in servers[1:]:
            assert len(server.undo_log) == 0

    def test_reply_cache_survives_settlement(self):
        sim, network, servers, client = self.run_crash_recovery()
        p2 = servers[1]
        # Re-delivering the request must answer from the cache without
        # touching the state machine.
        before = p2.machine.fingerprint()
        replies_before = len(client.replies)
        p2._task0_request(request(0))
        sim.run(until=sim.now + 5.0)
        assert p2.machine.fingerprint() == before
        assert len(client.replies) > replies_before


class TestConfigValidation:
    def test_negative_batch_interval_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            OARConfig(batch_interval=-1.0)

    def test_denormal_batch_interval_rejected(self):
        # A near-zero periodic timer would starve the event loop; the
        # config floor forces callers to use 0 (order-on-arrival).
        with pytest.raises(ValueError, match="floor"):
            OARConfig(batch_interval=1e-9)

    def test_zero_and_sane_intervals_accepted(self):
        OARConfig(batch_interval=0.0)
        OARConfig(batch_interval=0.5, gc_interval=10.0, gc_after_requests=5)

    def test_bad_gc_knobs_rejected(self):
        with pytest.raises(ValueError, match="gc_interval"):
            OARConfig(gc_interval=1e-9)
        with pytest.raises(ValueError, match="gc_after_requests"):
            OARConfig(gc_after_requests=0)
