"""Unit tests for deterministic key -> shard routing (repro.sharding)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sharding import (
    HashShardRouter,
    RangeShardRouter,
    RoutingTable,
    make_router,
)

pytestmark = pytest.mark.unit

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestHashRouter:
    def test_in_range(self):
        router = HashShardRouter(4)
        for i in range(200):
            assert 0 <= router.shard_of(f"key{i}") < 4

    def test_deterministic_within_process(self):
        router = HashShardRouter(8)
        first = [router.shard_of(f"k{i}") for i in range(100)]
        second = [HashShardRouter(8).shard_of(f"k{i}") for i in range(100)]
        assert first == second

    def test_deterministic_across_processes(self):
        # Rebalancing safety: a router built in a *different* interpreter
        # (fresh hash seed) must map every key identically, or replicas
        # and clients would disagree on placement after a restart.
        keys = [f"key{i}" for i in range(32)] + ["", "a", "0", "key"]
        router = HashShardRouter(5)
        local = [router.shard_of(key) for key in keys]
        script = (
            "from repro.sharding import HashShardRouter\n"
            f"keys = {keys!r}\n"
            "router = HashShardRouter(5)\n"
            "print([router.shard_of(k) for k in keys])\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="12345")
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert output == repr(local)

    def test_empty_key_routes(self):
        # The empty string is a legal (if degenerate) key: it must route
        # deterministically, not crash or fall through.
        router = HashShardRouter(3)
        shard = router.shard_of("")
        assert 0 <= shard < 3
        assert router.shard_of("") == shard

    def test_single_shard_maps_everything_to_zero(self):
        router = HashShardRouter(1)
        assert {router.shard_of(f"k{i}") for i in range(50)} == {0}
        assert router.shard_of("") == 0

    def test_spread_is_roughly_uniform(self):
        router = HashShardRouter(4)
        placement = router.placement([f"key{i}" for i in range(400)])
        assert len(placement) == 4
        for shard_keys in placement:
            assert 50 <= len(shard_keys) <= 150

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            HashShardRouter(0)


class TestRangeRouter:
    def test_boundaries_partition_the_space(self):
        router = RangeShardRouter(3, ["h", "p"])
        assert router.shard_of("a") == 0
        assert router.shard_of("g") == 0
        assert router.shard_of("h") == 1  # boundary belongs to the right
        assert router.shard_of("m") == 1
        assert router.shard_of("p") == 2
        assert router.shard_of("z") == 2

    def test_empty_key_goes_to_first_shard(self):
        router = RangeShardRouter(2, ["m"])
        assert router.shard_of("") == 0

    def test_boundary_count_enforced(self):
        with pytest.raises(ValueError):
            RangeShardRouter(3, ["m"])

    def test_boundaries_must_be_sorted(self):
        with pytest.raises(ValueError):
            RangeShardRouter(3, ["p", "h"])

    def test_single_shard_needs_no_boundaries(self):
        router = RangeShardRouter(1, ())
        assert router.shard_of("anything") == 0


class TestMakeRouter:
    def test_hash_kind(self):
        assert isinstance(make_router("hash", 4), HashShardRouter)

    def test_range_kind_derives_even_boundaries(self):
        universe = [f"k{i:03d}" for i in range(12)]
        router = make_router("range", 3, universe)
        placement = router.placement(universe)
        assert [len(shard) for shard in placement] == [4, 4, 4]

    def test_range_kind_needs_universe(self):
        with pytest.raises(ValueError):
            make_router("range", 3)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_router("consistent-hashing", 3)

    def test_placement_covers_every_key_once(self):
        universe = [f"k{i}" for i in range(97)]
        for kind in ("hash", "range"):
            router = make_router(kind, 4, universe)
            placement = router.placement(universe)
            flattened = [key for shard in placement for key in shard]
            assert sorted(flattened) == sorted(universe)


class TestRoutingTable:
    def test_epoch_zero_matches_base_router(self):
        base = HashShardRouter(4)
        table = RoutingTable(base)
        assert table.epoch == 0
        keys = [f"k{i}" for i in range(50)]
        assert [table.shard_of(k) for k in keys] == [base.shard_of(k) for k in keys]
        assert table.placement(keys) == base.placement(keys)

    def test_move_bumps_epoch_and_overrides(self):
        table = RoutingTable(HashShardRouter(4))
        src = table.shard_of("hot")
        dst = (src + 1) % 4
        assert table.move("hot", dst) == 1
        assert table.epoch == 1
        assert table.shard_of("hot") == dst
        # Other keys are untouched.
        assert table.shard_of("cold") == HashShardRouter(4).shard_of("cold")

    def test_move_rejects_out_of_range_destination(self):
        table = RoutingTable(HashShardRouter(2))
        with pytest.raises(ValueError):
            table.move("k", 2)
        with pytest.raises(ValueError):
            table.move("k", -1)

    def test_copy_is_independent_until_synced(self):
        authority = RoutingTable(HashShardRouter(3))
        stale = authority.copy()
        src = authority.shard_of("k")
        authority.move("k", (src + 1) % 3)
        assert stale.shard_of("k") == src  # the copy did not move
        assert stale.epoch == 0
        assert stale.sync_from(authority) is True
        assert stale.epoch == authority.epoch
        assert stale.shard_of("k") == authority.shard_of("k")

    def test_sync_is_noop_at_equal_epoch(self):
        authority = RoutingTable(HashShardRouter(3))
        copy = authority.copy()
        assert copy.sync_from(authority) is False

    def test_moves_accumulate_across_syncs(self):
        authority = RoutingTable(HashShardRouter(2))
        copy = authority.copy()
        authority.move("a", 1 - authority.shard_of("a"))
        copy.sync_from(authority)
        authority.move("b", 1 - authority.shard_of("b"))
        copy.sync_from(authority)
        assert copy.overrides == authority.overrides
        assert copy.epoch == 2
