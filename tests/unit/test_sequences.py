"""Unit tests for the Section 5.1 sequence algebra."""

import pytest

from repro.core.sequences import (
    EMPTY,
    MessageSequence,
    as_sequence,
    common_prefix,
    merge_dedup,
)

pytestmark = pytest.mark.unit



class TestConstruction:
    def test_empty(self):
        assert len(EMPTY) == 0
        assert not EMPTY
        assert list(EMPTY) == []
        assert repr(EMPTY) == "{ε}"

    def test_preserves_order(self):
        seq = MessageSequence(["m1", "m2", "m3"])
        assert list(seq) == ["m1", "m2", "m3"]
        assert repr(seq) == "{m1;m2;m3}"

    def test_deduplicates_keeping_first(self):
        seq = MessageSequence(["a", "b", "a", "c", "b"])
        assert list(seq) == ["a", "b", "c"]

    def test_equality_with_tuples_and_lists(self):
        seq = MessageSequence(["a", "b"])
        assert seq == ("a", "b")
        assert seq == ["a", "b"]
        assert seq == MessageSequence(["a", "b"])
        assert seq != MessageSequence(["b", "a"])

    def test_hashable(self):
        assert hash(MessageSequence("ab")) == hash(MessageSequence("ab"))
        assert {MessageSequence("ab"): 1}[MessageSequence("ab")] == 1

    def test_indexing_and_slicing(self):
        seq = MessageSequence(["a", "b", "c"])
        assert seq[0] == "a"
        assert seq[-1] == "c"
        assert seq[1:] == MessageSequence(["b", "c"])

    def test_membership(self):
        seq = MessageSequence(["a", "b"])
        assert "a" in seq
        assert "z" not in seq

    def test_to_set(self):
        assert MessageSequence(["a", "b"]).to_set() == frozenset({"a", "b"})

    def test_index_of(self):
        seq = MessageSequence(["a", "b", "c"])
        assert seq.index_of("b") == 1
        with pytest.raises(ValueError):
            seq.index_of("z")

    def test_as_sequence_no_copy(self):
        seq = MessageSequence(["a"])
        assert as_sequence(seq) is seq
        assert as_sequence(["a"]) == seq


class TestConcat:
    """⊕ -- paper: seq1 followed by seq2."""

    def test_basic(self):
        assert MessageSequence("ab").concat(MessageSequence("cd")) == tuple("abcd")

    def test_with_iterable(self):
        assert MessageSequence("ab").concat(["c"]) == tuple("abc")

    def test_identity_with_empty(self):
        seq = MessageSequence("abc")
        assert seq.concat(EMPTY) == seq
        assert EMPTY.concat(seq) == seq

    def test_append(self):
        assert MessageSequence("ab").append("c") == tuple("abc")

    def test_overlap_keeps_first_occurrence(self):
        assert MessageSequence("ab").concat(MessageSequence("bc")) == tuple("abc")


class TestSubtract:
    """⊖ -- paper: all messages of seq1 not in seq2, order kept."""

    def test_basic(self):
        assert MessageSequence("abcd").subtract(MessageSequence("bd")) == tuple("ac")

    def test_subtract_everything(self):
        assert MessageSequence("ab").subtract(MessageSequence("ab")) == EMPTY

    def test_subtract_nothing(self):
        seq = MessageSequence("ab")
        assert seq.subtract(EMPTY) == seq

    def test_subtract_disjoint(self):
        seq = MessageSequence("ab")
        assert seq.subtract(MessageSequence("xy")) == seq

    def test_subtract_iterable(self):
        assert MessageSequence("abc").subtract({"b"}) == tuple("ac")


class TestCommonPrefix:
    """⊓ -- paper: longest common prefix."""

    def test_identical(self):
        assert common_prefix(MessageSequence("abc"), MessageSequence("abc")) == tuple("abc")

    def test_proper_prefix(self):
        assert common_prefix(MessageSequence("ab"), MessageSequence("abcd")) == tuple("ab")

    def test_divergent(self):
        assert common_prefix(MessageSequence("abc"), MessageSequence("abd")) == tuple("ab")

    def test_no_common(self):
        assert common_prefix(MessageSequence("abc"), MessageSequence("xyz")) == EMPTY

    def test_with_empty(self):
        assert common_prefix(MessageSequence("abc"), EMPTY) == EMPTY

    def test_three_sequences(self):
        result = common_prefix(
            MessageSequence("abcd"), MessageSequence("abce"), MessageSequence("abx")
        )
        assert result == tuple("ab")

    def test_single_argument(self):
        assert common_prefix(MessageSequence("abc")) == tuple("abc")

    def test_no_arguments(self):
        assert common_prefix() == EMPTY

    def test_accepts_raw_iterables(self):
        assert common_prefix(("a", "b"), ("a", "c")) == ("a",)


class TestMergeDedup:
    """⊎ -- paper: append all sequences, removing duplicates."""

    def test_single(self):
        assert merge_dedup(MessageSequence("ab")) == tuple("ab")

    def test_disjoint(self):
        assert merge_dedup(MessageSequence("ab"), MessageSequence("cd")) == tuple("abcd")

    def test_overlapping_first_wins(self):
        assert merge_dedup(MessageSequence("ab"), MessageSequence("bc")) == tuple("abc")

    def test_recursive_definition(self):
        # ⊎(s1, s2, s3) = ⊎(⊎(s1, s2), s3) per the paper's recursion.
        s1, s2, s3 = MessageSequence("ab"), MessageSequence("bc"), MessageSequence("ca")
        assert merge_dedup(s1, s2, s3) == merge_dedup(merge_dedup(s1, s2), s3)

    def test_empty_args(self):
        assert merge_dedup() == EMPTY
        assert merge_dedup(EMPTY, EMPTY) == EMPTY


class TestPrefixPredicates:
    def test_is_prefix_of(self):
        assert MessageSequence("ab").is_prefix_of(MessageSequence("abc"))
        assert MessageSequence("abc").is_prefix_of(MessageSequence("abc"))
        assert not MessageSequence("abc").is_prefix_of(MessageSequence("ab"))
        assert not MessageSequence("ax").is_prefix_of(MessageSequence("abc"))
        assert EMPTY.is_prefix_of(MessageSequence("a"))

    def test_starts_with(self):
        assert MessageSequence("abc").starts_with(MessageSequence("ab"))

    def test_prefix_to_suffix_from(self):
        seq = MessageSequence("abcd")
        assert seq.prefix_to(2) == tuple("ab")
        assert seq.suffix_from(2) == tuple("cd")
        assert seq.prefix_to(0) == EMPTY


class TestPaperIdentities:
    """Spot-checks of the identities the proofs rely on."""

    def test_undo_legality_shape(self):
        # (O ⊖ Bad) ⊕ Bad == O when Bad is a suffix of O.
        o = MessageSequence(["m1", "m2", "m3", "m4"])
        bad = MessageSequence(["m3", "m4"])
        assert o.subtract(bad).concat(bad) == o

    def test_line9_unordered_computation(self):
        # (R_delivered ⊖ A_delivered) ⊖ O_delivered.
        r = MessageSequence(["m1", "m2", "m3", "m4", "m5"])
        a = MessageSequence(["m1"])
        o = MessageSequence(["m2", "m3"])
        assert r.subtract(a).subtract(o) == ("m4", "m5")
