"""Unit tests for Chandra-Toueg consensus with Maj-validity."""

from typing import Any, Dict, List, Optional

import pytest

from repro.consensus.chandra_toueg import ConsensusManager
from repro.failure.detector import HeartbeatFailureDetector, ScriptedFailureDetector
from repro.sim.component import ComponentProcess
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

pytestmark = pytest.mark.unit



class Participant(ComponentProcess):
    def __init__(self, pid: str, group: List[str], fd=None, collect="majority") -> None:
        super().__init__(pid)
        self.fd = fd if fd is not None else ScriptedFailureDetector()
        self.manager = self.add_component(
            ConsensusManager(self, group, self.fd, collect=collect)
        )
        if isinstance(self.fd, HeartbeatFailureDetector):
            self.add_component(self.fd)
        self.decisions: Dict[Any, Any] = {}

    def propose(self, instance: Any, value: Any) -> None:
        self.manager.propose(
            instance, value, lambda k, v: self.decisions.__setitem__(k, v)
        )


def build(n: int = 3, seed: int = 0, heartbeat: bool = False, collect: str = "majority"):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n)]
    participants = []
    for pid in group:
        if heartbeat:
            proc = Participant.__new__(Participant)
            ComponentProcess.__init__(proc, pid)
            proc.fd = HeartbeatFailureDetector(proc, group, interval=2.0, timeout=6.0)
            proc.manager = proc.add_component(
                ConsensusManager(proc, group, proc.fd, collect=collect)
            )
            proc.add_component(proc.fd)
            proc.decisions = {}
        else:
            proc = Participant(pid, group, collect=collect)
        participants.append(proc)
        network.add_process(proc)
    network.start_all()
    return sim, network, participants


class TestFailureFree:
    def test_all_decide_same_vector(self):
        sim, network, parts = build()
        for part in parts:
            part.propose("k0", f"v-{part.pid}")
        sim.run(max_events=50_000)
        decisions = [part.decisions["k0"] for part in parts]
        assert decisions.count(decisions[0]) == len(decisions)

    def test_maj_validity_vector_covers_majority(self):
        sim, network, parts = build(n=5)
        for part in parts:
            part.propose("k0", f"v-{part.pid}")
        sim.run(max_events=50_000)
        vector = parts[0].decisions["k0"]
        assert len(vector) >= 3  # majority of 5
        for pid, value in vector:
            assert value == f"v-{pid}"  # values are genuine initial values

    def test_vector_sorted_by_pid(self):
        sim, network, parts = build(n=5)
        for part in reversed(parts):
            part.propose("k0", f"v-{part.pid}")
        sim.run(max_events=50_000)
        vector = parts[0].decisions["k0"]
        pids = [pid for pid, _v in vector]
        assert pids == sorted(pids)

    def test_multiple_instances_are_independent(self):
        sim, network, parts = build()
        for part in parts:
            part.propose("a", f"a-{part.pid}")
            part.propose("b", f"b-{part.pid}")
        sim.run(max_events=100_000)
        for part in parts:
            assert set(part.decisions) == {"a", "b"}
        assert parts[0].decisions["a"] == parts[1].decisions["a"]
        assert parts[0].decisions["b"] == parts[1].decisions["b"]

    def test_double_propose_rejected(self):
        sim, network, parts = build()
        parts[0].propose("k0", "v")
        with pytest.raises(ValueError):
            parts[0].propose("k0", "v2")


class TestCoordinatorFailure:
    def test_crashed_coordinator_is_bypassed(self):
        sim, network, parts = build()
        network.crash("p1")  # round-0 coordinator
        for part in parts[1:]:
            part.propose("k0", f"v-{part.pid}")
        # p1 is crashed: suspicion must come from the (scripted) FDs.
        for part in parts[1:]:
            part.fd.force_suspect("p1")
        sim.run(max_events=50_000)
        assert parts[1].decisions["k0"] == parts[2].decisions["k0"]
        vector = parts[1].decisions["k0"]
        assert {pid for pid, _v in vector} <= {"p2", "p3"}

    def test_heartbeat_fd_drives_termination(self):
        sim, network, parts = build(heartbeat=True)
        network.crash("p1")
        for part in parts[1:]:
            part.propose("k0", f"v-{part.pid}")
        sim.run(until=200.0, max_events=200_000)
        assert "k0" in parts[1].decisions
        assert parts[1].decisions["k0"] == parts[2].decisions["k0"]

    def test_wrong_suspicion_is_safe(self):
        # p2 and p3 wrongly suspect the (alive) coordinator p1; the
        # protocol moves to later rounds and still agrees with p1.
        sim, network, parts = build()
        for part in parts:
            part.propose("k0", f"v-{part.pid}")
        parts[1].fd.force_suspect("p1")
        parts[2].fd.force_suspect("p1")
        sim.run(max_events=100_000)
        decisions = [part.decisions.get("k0") for part in parts]
        assert decisions[0] is not None
        assert decisions.count(decisions[0]) == 3


class TestLatecomers:
    def test_late_proposer_gets_stored_decision(self):
        sim, network, parts = build()
        parts[0].propose("k0", "v-p1")
        parts[1].propose("k0", "v-p2")
        sim.run(max_events=50_000)
        assert "k0" in parts[0].decisions
        # p3 proposes long after the decision: must terminate immediately.
        parts[2].propose("k0", "v-p3")
        sim.run(max_events=10_000)
        assert parts[2].decisions["k0"] == parts[0].decisions["k0"]

    def test_messages_before_local_propose_are_buffered(self):
        sim, network, parts = build()
        parts[0].propose("k0", "v-p1")
        sim.run(until=0.5)  # estimates in flight to p1 only
        parts[1].propose("k0", "v-p2")
        parts[2].propose("k0", "v-p3")
        sim.run(max_events=50_000)
        assert len({repr(p.decisions["k0"]) for p in parts}) == 1


class TestUnsuspectedCollection:
    def test_decision_can_exclude_wrongly_suspected_minority(self):
        # Four participants; p3/p4 suspect p2 (and crashed p1) while a
        # partition delays p2's traffic: the decision is built from
        # p3/p4's values only -- the Figure 4 precondition.
        sim, network, parts = build(n=4, collect="unsuspected")
        network.crash("p1")
        network.set_partition([["p2"], ["p3", "p4"]])
        for part in parts[1:]:
            part.propose("k0", f"v-{part.pid}")
        for pid in ("p3", "p4"):
            proc = next(p for p in parts if p.pid == pid)
            proc.fd.force_suspect("p1")
            proc.fd.force_suspect("p2")
        next(p for p in parts if p.pid == "p2").fd.force_suspect("p1")
        sim.schedule_at(30.0, network.heal)
        sim.run(max_events=200_000)
        for part in parts[1:]:
            assert "k0" in part.decisions
        vector = parts[1].decisions["k0"]
        assert {pid for pid, _v in vector} == {"p3", "p4"}
        # Agreement still holds everywhere, including the excluded p2.
        assert parts[1].decisions["k0"] == parts[2].decisions["k0"]
        assert parts[2].decisions["k0"] == parts[3].decisions["k0"]

    def test_invalid_collect_mode_rejected(self):
        host = ComponentProcess("p1")
        with pytest.raises(ValueError):
            ConsensusManager(host, ["p1"], ScriptedFailureDetector(), collect="psychic")

    def test_non_participant_rejected(self):
        host = ComponentProcess("outsider")
        with pytest.raises(ValueError):
            ConsensusManager(host, ["p1", "p2"], ScriptedFailureDetector())
