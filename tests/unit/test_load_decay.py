"""Unit tests for the decayed per-key load counters (hot-spot detection).

The rebalance planner must act on *recent* load: a key that was hot
during warm-up and went cold long ago no longer justifies a migration.
"""

import pytest

from repro.core.loadtrack import DecayingKeyLoad
from repro.sharding.rebalance import RebalanceCoordinator
from repro.sharding.router import HashShardRouter, RoutingTable

pytestmark = pytest.mark.unit


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestDecayingKeyLoad:
    def test_no_decay_within_an_instant(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        for _ in range(5):
            load.record("k")
        assert load["k"] == pytest.approx(5.0)
        assert load.counts() == {"k": 5}

    def test_half_life_halves(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        load.record("k", weight=8.0)
        clock.now = 100.0
        assert load["k"] == pytest.approx(4.0)
        clock.now = 300.0
        assert load["k"] == pytest.approx(1.0)
        # The exact submission book never decays.
        assert load.counts() == {"k": 1}

    def test_recording_compounds_with_decay(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        load.record("k", weight=4.0)
        clock.now = 100.0
        load.record("k", weight=1.0)  # 4/2 + 1
        assert load["k"] == pytest.approx(3.0)

    def test_unrecord_compensates_and_floors_at_zero(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        load.record("k")
        clock.now = 1000.0  # decayed to ~0.001
        load.unrecord("k")
        assert load["k"] == 0.0
        assert load.counts() == {"k": 0}

    def test_half_life_none_is_a_plain_counter(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=None, clock=clock)
        load.record("k")
        clock.now = 1e9
        load.record("k")
        assert load["k"] == pytest.approx(2.0)

    def test_snapshot_brings_idle_keys_current(self):
        # The stale-hot-spot bug: an idle key's stored value is stale
        # until touched; snapshot() must decay it to *now* anyway.
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        load.record("old", weight=100.0)
        clock.now = 1000.0
        load.record("new", weight=10.0)
        snap = load.snapshot()
        assert snap["new"] == pytest.approx(10.0)
        assert snap["old"] < 0.1  # ten half-lives gone

    def test_dict_like_views_decay(self):
        clock = ManualClock()
        load = DecayingKeyLoad(half_life=100.0, clock=clock)
        load.record("k", weight=8.0)
        clock.now = 100.0
        assert dict(load.items()) == {"k": pytest.approx(4.0)}
        assert "k" in load and len(load) == 1
        assert load.get("missing") == 0.0


class _StubClient:
    """The minimum surface RebalanceCoordinator needs at plan time."""

    def __init__(self, key_load) -> None:
        self.key_load = key_load
        self.pid = "rb-stub"
        self.on_adopt = None


class TestPlanFollowsTheCurrentHead:
    def _coordinator(self, clients, n_shards=2):
        authority = RoutingTable(HashShardRouter(n_shards))
        return RebalanceCoordinator(
            _StubClient(clients[0].key_load) if clients else _StubClient(None),
            authority,
            observed_clients=clients,
        )

    def test_shifted_hot_set_drives_the_plan(self):
        # One key hammered early on shard A, then traffic moves to a
        # head key (plus filler) on shard B.  An all-time counter still
        # calls the old key the hot head and plans to move it; the
        # decayed snapshot must plan the *current* head instead.
        router = HashShardRouter(2)
        keys = [f"k{i:03d}" for i in range(32)]
        shard_a = [k for k in keys if router.shard_of(k) == 0]
        shard_b = [k for k in keys if router.shard_of(k) == 1]
        hot_old, old_filler = shard_a[0], shard_a[1]
        hot_new, filler = shard_b[0], shard_b[1]

        def replay(half_life):
            clock = ManualClock()
            load = DecayingKeyLoad(half_life=half_life, clock=clock)
            for _ in range(120):
                load.record(hot_old)
            for _ in range(80):
                load.record(old_filler)
            clock.now = 1200.0  # twelve half-lives: the old head is cold
            for _ in range(60):
                load.record(hot_new)
            for _ in range(40):
                load.record(filler)
            return load

        load = replay(half_life=100.0)
        coordinator = self._coordinator([_StubClient(load)])
        snapshot = coordinator.snapshot_key_load()
        assert snapshot[hot_new] > snapshot[hot_old]

        moves = coordinator.plan_moves(max_moves=1)
        assert moves, "the current hot head must be planned off its shard"
        key, src, _dst = moves[0]
        assert key == hot_new
        assert src == router.shard_of(hot_new)

        # The same history through an undecayed counter migrates a key
        # off the *old* hot shard -- a key nobody touches any more --
        # which is exactly the stale-hot-spot bug this fixes.
        stale_coordinator = self._coordinator([_StubClient(replay(None))])
        stale_moves = stale_coordinator.plan_moves(max_moves=1)
        assert stale_moves
        stale_key, stale_src, _ = stale_moves[0]
        assert stale_src == router.shard_of(hot_old)
        assert stale_key in (hot_old, old_filler)
