"""Unit tests for the discrete-event loop (repro.sim.loop)."""

import pytest

from repro.sim.loop import Simulator

pytestmark = pytest.mark.unit



class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(1.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_soon_runs_after_pending_same_time_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: sim.call_soon(lambda: fired.append("soon")))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second", "soon"]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestTimerHandles:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert not handle.fired
        assert handle.cancelled

    def test_handle_reports_fired(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert handle.fired
        assert not handle.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run()
        handle.cancel()
        assert fired == ["x"]
        assert handle.fired


class TestRunVariants:
    def test_run_until_horizon_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for _ in range(10):
            sim.schedule(1.0, lambda: fired.append("x"))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_run_until_predicate(self):
        sim = Simulator()
        counter = []

        def tick():
            counter.append(1)
            if len(counter) < 5:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        assert sim.run_until(lambda: len(counter) >= 3)
        assert len(counter) == 3

    def test_run_until_returns_false_when_events_exhaust(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert not sim.run_until(lambda: False, max_events=100)

    def test_step_returns_false_on_empty_queue(self):
        sim = Simulator()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        assert [a.rng.random() for _ in range(10)] == [
            b.rng.random() for _ in range(10)
        ]

    def test_child_rngs_are_independent_and_deterministic(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        a_child = a.child_rng("fd")
        # Consuming the master rng must not perturb the child stream.
        b.rng.random()
        b_child = b.child_rng("fd")
        assert [a_child.random() for _ in range(5)] == [
            b_child.random() for _ in range(5)
        ]

    def test_different_names_different_streams(self):
        sim = Simulator(seed=7)
        assert sim.child_rng("x").random() != sim.child_rng("y").random()
