"""Unit tests for the discrete-event loop (repro.sim.loop)."""

import pytest

from repro.sim.loop import Simulator

pytestmark = pytest.mark.unit



class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(1.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_soon_runs_after_pending_same_time_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: sim.call_soon(lambda: fired.append("soon")))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second", "soon"]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestTimerHandles:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert not handle.fired
        assert handle.cancelled

    def test_handle_reports_fired(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert handle.fired
        assert not handle.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run()
        handle.cancel()
        assert fired == ["x"]
        assert handle.fired


class TestRunVariants:
    def test_run_until_horizon_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for _ in range(10):
            sim.schedule(1.0, lambda: fired.append("x"))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_run_until_predicate(self):
        sim = Simulator()
        counter = []

        def tick():
            counter.append(1)
            if len(counter) < 5:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        assert sim.run_until(lambda: len(counter) >= 3)
        assert len(counter) == 3

    def test_run_until_returns_false_when_events_exhaust(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert not sim.run_until(lambda: False, max_events=100)

    def test_step_returns_false_on_empty_queue(self):
        sim = Simulator()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestFastLane:
    def test_post_and_post_at_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.post(2.0, lambda: fired.append("b"))
        sim.post_at(1.0, lambda: fired.append("a"))
        sim.post(2.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.post(-0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.post_at(0.5, lambda: None)

    def test_same_instant_mix_of_posts_and_timers_preserves_order(self):
        """Everything created at instant t fires in creation order,
        regardless of which API (schedule/post/call_soon) created it."""
        sim = Simulator()
        fired = []

        def at_one():
            fired.append("base")
            sim.call_soon(lambda: fired.append("soon"))
            sim.schedule(0.0, lambda: fired.append("timer0"))
            sim.post_at(sim.now, lambda: fired.append("post_at"))
            sim.call_soon(lambda: fired.append("soon2"))

        sim.schedule(1.0, at_one)
        sim.run()
        assert fired == ["base", "soon", "timer0", "post_at", "soon2"]

    def test_heap_events_due_now_precede_later_fast_lane_entries(self):
        """An event scheduled *before* instant t for time t fires before
        anything created *at* instant t (it has the older counter)."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: fired.append("soon")))
        sim.schedule(1.0, lambda: fired.append("pre-scheduled"))
        sim.run()
        assert fired == ["pre-scheduled", "soon"]

    def test_fast_lane_cascade_stays_at_current_instant(self):
        sim = Simulator()
        times = []

        def pump(n):
            times.append(sim.now)
            if n:
                sim.call_soon(lambda: pump(n - 1))

        sim.schedule(3.0, lambda: pump(4))
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.0] * 5 + [5.0]

    def test_zero_delay_timer_is_cancellable(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: None)
        sim.run()
        handle = sim.schedule(0.0, lambda: fired.append("x"))
        assert handle.active
        handle.cancel()
        sim.run()
        assert fired == []
        assert not handle.fired

    def test_step_interleaves_fast_lane_correctly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: fired.append("soon")))
        sim.schedule(1.0, lambda: fired.append("second"))
        while sim.step():
            pass
        assert fired == ["second", "soon"]


class TestPendingCounts:
    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        dead = sim.schedule(2.0, lambda: None)
        sim.post(3.0, lambda: None)
        sim.call_soon(lambda: None)
        assert sim.pending_events == 4
        dead.cancel()
        assert sim.pending_events == 3
        assert sim.cancelled_pending == 1
        assert keep.active
        sim.run()
        assert sim.pending_events == 0
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 3  # the cancelled timer never ran

    def test_cancelled_fast_lane_timer_is_not_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        handle = sim.schedule(0.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 0
        assert sim.cancelled_pending == 1
        sim.run()
        assert sim.cancelled_pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.cancelled_pending == 1

    def test_compaction_drops_dead_entries(self):
        sim = Simulator()
        handles = [sim.schedule(10.0, lambda: None) for _ in range(500)]
        live = sim.schedule(5.0, lambda: None)
        for handle in handles:
            handle.cancel()
        # Over half the queue is dead and above the floor: compacted.
        assert sim.cancelled_pending < 500
        assert sim.pending_events == 1
        sim.run()
        assert live.fired
        assert sim.events_processed == 1

    def test_mid_run_compaction_keeps_later_events(self):
        """Regression: _compact() must mutate the heap in place.

        A callback that cancels enough timers to trigger compaction and
        then schedules more work used to strand the new events in a
        rebound list while run() iterated a stale alias."""
        sim = Simulator()
        fired = []
        handles = []

        def cancel_storm_then_reschedule():
            for handle in handles:
                handle.cancel()
            sim.schedule(1.0, lambda: fired.append("after-compaction"))
            sim.call_soon(lambda: fired.append("same-instant"))

        handles.extend(sim.schedule(50.0, lambda: None) for _ in range(200))
        sim.schedule(1.0, cancel_storm_then_reschedule)
        sim.run()
        assert fired == ["same-instant", "after-compaction"]
        assert sim.pending_events == 0
        assert sim.cancelled_pending == 0

    def test_fast_lane_cancels_do_not_corrupt_counters(self):
        """Regression: >64 same-instant cancellations must not trip the
        heap-compaction trigger or skew the pending accounting."""
        sim = Simulator()
        fired = []

        def burst():
            burst_handles = [
                sim.schedule(0.0, lambda: fired.append("no")) for _ in range(100)
            ]
            for handle in burst_handles:
                handle.cancel()
            sim.call_soon(lambda: fired.append("yes"))

        sim.schedule(1.0, burst)
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run()
        assert fired == ["yes", "later"]
        assert sim.pending_events == 0
        assert sim.cancelled_pending == 0

    def test_cancel_storm_does_not_bloat_queue(self):
        sim = Simulator()
        survivor = None
        for _ in range(10_000):
            if survivor is not None:
                survivor.cancel()
            survivor = sim.schedule(10.0, lambda: None)
        assert sim.pending_events == 1
        # Lazy cancellation plus compaction keeps the physical queue
        # near the live size instead of the cancellation count.
        assert len(sim._queue) < 1_000
        sim.run()
        assert survivor.fired


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        assert [a.rng.random() for _ in range(10)] == [
            b.rng.random() for _ in range(10)
        ]

    def test_child_rngs_are_independent_and_deterministic(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        a_child = a.child_rng("fd")
        # Consuming the master rng must not perturb the child stream.
        b.rng.random()
        b_child = b.child_rng("fd")
        assert [a_child.random() for _ in range(5)] == [
            b_child.random() for _ in range(5)
        ]

    def test_different_names_different_streams(self):
        sim = Simulator(seed=7)
        assert sim.child_rng("x").random() != sim.child_rng("y").random()
