"""Unit tests for the bank escrow protocol and the sharding hooks."""

import pytest

from repro.statemachine import (
    BankMachine,
    CounterMachine,
    KVStoreMachine,
    StackMachine,
)

pytestmark = pytest.mark.unit


class TestEscrowPrepare:
    def test_debit_moves_funds_to_escrow(self):
        m = BankMachine({"a": 100})
        result = m.apply(("tx_prepare", "t1", "debit", "a", 30))
        assert result.ok and result.value == 70
        assert m.total_balance() == 70
        assert m.escrowed_total() == 30
        assert m.conserved_total() == 100
        assert m.pending_holds() == {"t1": ("debit", "a", 30)}

    def test_credit_defers_application(self):
        m = BankMachine({"b": 50})
        result = m.apply(("tx_prepare", "t1", "credit", "b", 30))
        assert result.ok and result.value == 50  # not yet credited
        assert m.total_balance() == 50
        assert m.escrowed_total() == 0  # credits hold no funds
        assert m.pending_holds() == {"t1": ("credit", "b", 30)}

    def test_debit_overdraft_rejected(self):
        m = BankMachine({"a": 10})
        result = m.apply(("tx_prepare", "t1", "debit", "a", 30))
        assert not result.ok and "overdraft" in result.error
        assert m.pending_holds() == {}
        assert m.total_balance() == 10

    def test_duplicate_txid_rejected(self):
        m = BankMachine({"a": 100})
        assert m.apply(("tx_prepare", "t1", "debit", "a", 10)).ok
        dup = m.apply(("tx_prepare", "t1", "debit", "a", 10))
        assert not dup.ok and "exists" in dup.error
        assert m.total_balance() == 90  # only the first hold applied

    def test_missing_account_and_bad_amount(self):
        m = BankMachine({"a": 100})
        assert not m.apply(("tx_prepare", "t1", "debit", "ghost", 10)).ok
        assert not m.apply(("tx_prepare", "t2", "debit", "a", -5)).ok
        assert not m.apply(("tx_prepare", "t3", "flight", "a", 5)).ok
        assert m.pending_holds() == {}


class TestEscrowFinish:
    def test_commit_applies_credit(self):
        m = BankMachine({"b": 50})
        m.apply(("tx_prepare", "t1", "credit", "b", 30))
        result = m.apply(("tx_commit", "t1"))
        assert result.ok and result.value == 80
        assert m.pending_holds() == {}

    def test_commit_releases_debit(self):
        m = BankMachine({"a": 100})
        m.apply(("tx_prepare", "t1", "debit", "a", 30))
        assert m.apply(("tx_commit", "t1")).ok
        # The money left this shard: balances drop, escrow is empty.
        assert m.total_balance() == 70
        assert m.conserved_total() == 70
        assert m.pending_holds() == {}

    def test_abort_returns_debit(self):
        m = BankMachine({"a": 100})
        m.apply(("tx_prepare", "t1", "debit", "a", 30))
        assert m.apply(("tx_abort", "t1")).ok
        assert m.total_balance() == 100
        assert m.pending_holds() == {}

    def test_abort_drops_credit(self):
        m = BankMachine({"b": 50})
        m.apply(("tx_prepare", "t1", "credit", "b", 30))
        assert m.apply(("tx_abort", "t1")).ok
        assert m.total_balance() == 50
        assert m.pending_holds() == {}

    def test_finish_unknown_tx_is_deterministic_error(self):
        m = BankMachine({"a": 100})
        assert not m.apply(("tx_commit", "ghost")).ok
        assert not m.apply(("tx_abort", "ghost")).ok


class TestEscrowUndo:
    """Opt-undeliver must roll escrow operations back exactly."""

    def test_prepare_undo_restores_funds_and_holds(self):
        m = BankMachine({"a": 100})
        before = m.fingerprint()
        _result, undo = m.apply_with_undo(("tx_prepare", "t1", "debit", "a", 30))
        undo()
        assert m.fingerprint() == before

    def test_commit_undo_restores_hold(self):
        m = BankMachine({"b": 50})
        m.apply(("tx_prepare", "t1", "credit", "b", 30))
        before = m.fingerprint()
        _result, undo = m.apply_with_undo(("tx_commit", "t1"))
        undo()
        assert m.fingerprint() == before

    def test_abort_undo_restores_hold(self):
        m = BankMachine({"a": 100})
        m.apply(("tx_prepare", "t1", "debit", "a", 30))
        before = m.fingerprint()
        _result, undo = m.apply_with_undo(("tx_abort", "t1"))
        undo()
        assert m.fingerprint() == before

    def test_snapshot_restore_covers_holds(self):
        m = BankMachine({"a": 100})
        m.apply(("tx_prepare", "t1", "debit", "a", 30))
        snapshot = m.snapshot()
        fingerprint = m.fingerprint()
        m.apply(("tx_commit", "t1"))
        m.restore(snapshot)
        assert m.fingerprint() == fingerprint

    def test_fingerprint_unchanged_without_holds(self):
        # Replica-equality digests from pre-escrow runs stay valid.
        m = BankMachine({"a": 1, "b": 2})
        assert m.fingerprint() == (("a", 1), ("b", 2))


class TestKeyExtraction:
    def test_bank_keys(self):
        keys_of = BankMachine.keys_of
        assert keys_of(("deposit", "a", 5)) == ("a",)
        assert keys_of(("withdraw", "a", 5)) == ("a",)
        assert keys_of(("balance", "a")) == ("a",)
        assert keys_of(("open", "a")) == ("a",)
        assert keys_of(("transfer", "a", "b", 5)) == ("a", "b")
        assert keys_of(("tx_prepare", "t1", "debit", "a", 5)) == ("a",)
        assert keys_of(("tx_commit", "t1")) == ()
        assert keys_of(("total",)) == ()

    def test_kv_keys(self):
        keys_of = KVStoreMachine.keys_of
        assert keys_of(("set", "k", "v")) == ("k",)
        assert keys_of(("get", "k")) == ("k",)
        assert keys_of(("delete", "k")) == ("k",)
        assert keys_of(("cas", "k", "old", "new")) == ("k",)
        assert keys_of(("keys",)) == ()

    def test_global_machines_are_keyless(self):
        assert CounterMachine.keys_of(("incr",)) == ()
        assert StackMachine.keys_of(("push", "x")) == ()


class TestTxBranches:
    def test_transfer_decomposes(self):
        branches = BankMachine.tx_branches(("transfer", "a", "b", 25), "t9")
        assert branches == {
            "a": ("tx_prepare", "t9", "debit", "a", 25),
            "b": ("tx_prepare", "t9", "credit", "b", 25),
        }

    def test_other_ops_do_not_decompose(self):
        assert BankMachine.tx_branches(("deposit", "a", 5), "t1") is None
        assert KVStoreMachine.tx_branches(("set", "k", "v"), "t1") is None
