"""Unit tests for the ASCII space-time diagram renderer."""

from repro.analysis.timeline import MARKERS, describe_run, render_timeline
from repro.sim.trace import TraceLog

import pytest

pytestmark = pytest.mark.unit



def make_trace():
    log = TraceLog()
    log.record(0.0, "c1", "submit", rid="m1", op=("incr",))
    log.record(1.0, "p1", "r_deliver", rid="m1")
    log.record(1.0, "p1", "seq_order", epoch=0, rids=("m1",))
    log.record(1.0, "p1", "opt_deliver", rid="m1", epoch=0, position=1, value=1)
    log.record(2.0, "p2", "opt_deliver", rid="m1", epoch=0, position=1, value=1)
    log.record(3.0, "c1", "adopt", rid="m1", position=1, value=1, epoch=0,
               weight=("p1", "p2"), conservative=False, latency=3.0)
    log.record(5.0, "p1", "crash")
    log.record(8.0, "p2", "phase2_start", epoch=0, reason="suspicion")
    log.record(9.0, "p2", "opt_undeliver", rid="m1", epoch=0)
    log.record(10.0, "p2", "a_deliver", rid="m1", epoch=0, position=1, value=1)
    return log


class TestRenderTimeline:
    def test_all_lanes_present(self):
        text = render_timeline(make_trace(), ["p1", "p2", "c1"])
        lines = text.splitlines()
        assert lines[0].strip().startswith("p1")
        assert lines[1].strip().startswith("p2")
        assert lines[2].strip().startswith("c1")

    def test_markers_appear(self):
        text = render_timeline(make_trace(), ["p1", "p2", "c1"])
        for kind in ("opt_deliver", "a_deliver", "opt_undeliver", "crash"):
            assert MARKERS[kind][0] in text

    def test_crash_truncates_lane(self):
        text = render_timeline(make_trace(), ["p1"], width=40, legend=False)
        lane = text.splitlines()[0]
        crash_at = lane.index("X")
        # Everything after the crash is blank, like the paper's figures.
        assert set(lane[crash_at + 1:]) <= {" "}

    def test_time_window_filtering(self):
        text = render_timeline(
            make_trace(), ["p2"], start=0.0, end=5.0, legend=False
        )
        assert "A" not in text  # the a_deliver at t=10 is outside

    def test_kind_filtering(self):
        text = render_timeline(
            make_trace(), ["p1", "p2"], kinds=["opt_deliver"], legend=False
        )
        assert "o" in text
        assert "X" not in text

    def test_empty_selection(self):
        assert "no events" in render_timeline(TraceLog(), ["p1"])

    def test_legend_lists_only_used_markers(self):
        text = render_timeline(make_trace(), ["p1"], kinds=["crash"])
        assert "crash" in text
        assert "Opt-undeliver" not in text

    def test_collision_shifts_right(self):
        # Three same-time events on one lane must all be drawn.
        log = TraceLog()
        for _ in range(3):
            log.record(1.0, "p1", "opt_deliver", rid="m", epoch=0,
                       position=1, value=1)
        text = render_timeline(log, ["p1"], width=30, legend=False)
        assert text.splitlines()[0].count("o") == 3

    def test_axis_shows_bounds(self):
        text = render_timeline(make_trace(), ["p1"], start=0.0, end=10.0)
        assert "t=0.0" in text
        assert "t=10.0" in text


class TestDescribeRun:
    def test_synopsis_counts(self):
        text = describe_run(make_trace(), ["p1", "p2", "c1"])
        assert "Opt-deliver: 2" in text
        assert "A-deliver: 1" in text
        assert "crash: 1" in text
        assert "epoch(s) [0]" in text

    def test_empty_trace(self):
        assert describe_run(TraceLog(), ["p1"]) == ""
