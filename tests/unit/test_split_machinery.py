"""Unit tests for hot-key splitting (machines, router, exec weights).

The sharded end-to-end paths (client rewrite, borrowing, auto-split,
conservation under traffic) live in
``tests/integration/test_key_split_cluster.py``; these tests pin the
building blocks in isolation: the counter's inline split family, the
:class:`~repro.statemachine.base.SplittableMachine` hook surface and
``split_open``/``split_close`` op semantics on a sharded bank, the
routing table's split bookkeeping, and the per-op execution weights
(:meth:`~repro.statemachine.base.StateMachine.exec_cost_of`) the engine
charges for them.
"""

import pytest

from repro.core.execution import ExecutionEngine
from repro.sharding.router import RoutingTable, make_router
from repro.sim.loop import Simulator
from repro.statemachine.bank import BankMachine
from repro.statemachine.base import SplittableMachine, StateMachine
from repro.statemachine.counter import CounterMachine
from repro.statemachine.kvstore import KVStoreMachine
from repro.statemachine.undo import UndoLog

pytestmark = pytest.mark.unit


class TestCounterSplitFamily:
    """The unsharded counter's inline split/fincr/unsplit demo."""

    def test_split_partitions_and_conserves_the_value(self):
        counter = CounterMachine(initial=10)
        assert counter.apply(("split", 3)).ok
        assert counter.fragments() == (4, 3, 3)  # remainder on fragment 0
        assert counter.value() == 10

    def test_fincr_targets_one_fragment(self):
        counter = CounterMachine(initial=0)
        counter.apply(("split", 2))
        result = counter.apply(("fincr", 1, 5))
        assert result.ok and result.value == 5
        assert counter.fragments() == (0, 5)
        assert counter.apply(("read",)).value == 5

    def test_plain_incr_lands_on_fragment_zero_while_split(self):
        counter = CounterMachine(initial=6)
        counter.apply(("split", 2))
        counter.apply(("incr", 4))
        assert counter.fragments() == (7, 3)
        assert counter.value() == 10

    def test_unsplit_merges_exactly(self):
        counter = CounterMachine(initial=7)
        counter.apply(("split", 4))
        counter.apply(("fincr", 2, 9))
        result = counter.apply(("unsplit",))
        assert result.ok and result.value == 16
        assert counter.fragments() is None
        assert counter.state() == 16

    def test_split_family_round_trips_through_undo(self):
        counter = CounterMachine(initial=11)
        undos = []
        for op in (("split", 2), ("fincr", 1, 3), ("incr",), ("unsplit",)):
            result, undo = counter.apply_with_undo(op)
            assert result.ok
            undos.append(undo)
            assert counter.value() in (11, 14, 15)  # conserved modulo the adds
        assert counter.state() == 15
        for undo in reversed(undos):
            undo()
        assert counter.state() == 11 and counter.fragments() is None

    def test_split_errors(self):
        counter = CounterMachine()
        assert not counter.apply(("split", 1)).ok  # n < 2
        assert not counter.apply(("fincr", 0)).ok  # not split
        assert not counter.apply(("unsplit",)).ok  # not split
        counter.apply(("split", 2))
        assert not counter.apply(("split", 2)).ok  # already split
        assert not counter.apply(("fincr", 5)).ok  # no such fragment

    def test_fragment_footprints_are_disjoint(self):
        # Two fincr ops on different fragments may share an execution
        # lane pair; same fragment, split, and plain incr stay serial.
        f0 = CounterMachine.conflict_footprint(("fincr", 0))
        f1 = CounterMachine.conflict_footprint(("fincr", 1))
        assert f0 and f1 and not (f0 & f1)
        assert CounterMachine.conflict_footprint(("split", 2)) is None  # global
        assert CounterMachine.conflict_footprint(("incr",)) is None


class TestFragmentNaming:
    def test_fragment_keys_round_trip_through_parent_key(self):
        frags = BankMachine.fragment_keys("acct07", 3)
        assert frags == ("acct07#f0", "acct07#f1", "acct07#f2")
        for frag in frags:
            assert BankMachine.parent_key(frag) == "acct07"

    def test_parent_key_rejects_non_fragments(self):
        assert BankMachine.parent_key("acct07") is None
        assert BankMachine.parent_key("acct#fx") is None  # non-digit suffix
        assert BankMachine.parent_key("#f0") is None  # empty stem
        assert BankMachine.parent_key(("acct", 0)) is None  # non-string

    def test_nested_fragment_parses_to_the_inner_parent(self):
        # rfind: a fragment of a fragment names its immediate parent.
        assert BankMachine.parent_key("a#f0#f1") == "a#f0"


class TestBankSplitHooks:
    def test_split_parts_is_exact_for_awkward_values(self):
        machine = BankMachine()
        for value in (0, 1, 7, 100, -7, -100, 999):
            for n in (2, 3, 4, 8):
                parts = machine.split_parts(value, n)
                assert len(parts) == n
                assert machine.merge_parts(parts) == value

    def test_split_kind_classification(self):
        assert BankMachine.split_kind(("deposit", "a", 5)) == "local"
        assert BankMachine.split_kind(("withdraw", "a", 5)) == "budget"
        assert BankMachine.split_kind(("balance", "a")) == "read"
        # Multi-key and structural ops are not fragment-rewritable.
        assert BankMachine.split_kind(("transfer", "t1", "a", "b", 5)) is None
        assert BankMachine.split_kind(("open", "a")) is None

    def test_fragment_op_substitutes_the_key(self):
        op = BankMachine.fragment_op(("deposit", "a", 5), "a", "a#f1")
        assert op == ("deposit", "a#f1", 5)

    def test_merge_read_sums_fragment_balances(self):
        assert BankMachine.merge_read(("balance", "a"), (3, 4, 5)) == 12


class TestSplitOpsOnShardedBank:
    def make(self, balance=90):
        return BankMachine({"a": balance, "b": 10}, owned=("a", "b"))

    def test_split_open_installs_frag0_and_escrows_the_rest(self):
        machine = self.make()
        result = machine.apply(("split_open", "s1", "a", ("a#f0", "a#f1", "a#f2"), (0, 1, 2)))
        assert result.ok
        kind, shipped = result.value
        assert kind == "split" and len(shipped) == 2
        assert shipped[0] == ("s1.1", "a#f1", 1, 30)
        assert shipped[1] == ("s1.2", "a#f2", 2, 30)
        assert not machine.owns("a") and machine.owns("a#f0")
        assert machine.fragment_value("a#f0") == 30
        # The escrowed parts still count toward the shard's conserved total.
        assert machine.conserved_total() == 100

    def test_split_open_undo_restores_the_key_exactly(self):
        machine = self.make()
        before = machine.fingerprint()
        result, undo = machine.apply_with_undo(
            ("split_open", "s1", "a", ("a#f0", "a#f1"), (0, 1))
        )
        assert result.ok
        undo()
        assert machine.fingerprint() == before

    def test_split_open_rejections(self):
        machine = self.make()
        # Not owned here: WrongShard-shaped failure.
        assert not machine.apply(("split_open", "s1", "zz", ("zz#f0", "zz#f1"), (0, 1))).ok
        # Fewer than two fragments.
        assert not machine.apply(("split_open", "s1", "a", ("a#f0",), (0,))).ok
        # Fragment key collides with an existing owned key.
        assert not machine.apply(("split_open", "s1", "a", ("a#f0", "b"), (0, 1))).ok

    def test_split_close_merges_and_is_idempotent(self):
        machine = BankMachine({"a#f0": 60, "a#f1": 40}, owned=("a#f0", "a#f1"))
        result = machine.apply(("split_close", "u1", "a", ("a#f0", "a#f1")))
        assert result.ok and result.value == ("merged", 100)
        assert machine.owns("a") and machine.fragment_value("a") == 100
        assert not machine.owns("a#f0")
        # A re-delivered close of the merged key is a no-op ack.
        again = machine.apply(("split_close", "u1", "a", ("a#f0", "a#f1")))
        assert again.ok and again.value == ("already",)

    def test_split_close_undo_restores_fragments(self):
        machine = BankMachine({"a#f0": 60, "a#f1": 40}, owned=("a#f0", "a#f1"))
        before = machine.fingerprint()
        result, undo = machine.apply_with_undo(("split_close", "u1", "a", ("a#f0", "a#f1")))
        assert result.ok
        undo()
        assert machine.fingerprint() == before

    def test_split_close_requires_all_fragments_local(self):
        machine = BankMachine({"a#f0": 60}, owned=("a#f0",))
        result = machine.apply(("split_close", "u1", "a", ("a#f0", "a#f1")))
        assert not result.ok  # a#f1 lives elsewhere: migrate it home first


class TestRoutingTableSplits:
    def make(self, n_shards=3):
        keys = tuple(f"k{i}" for i in range(9))
        return RoutingTable(make_router("range", n_shards, keys)), keys

    def test_split_routes_fragments_and_bumps_epoch_once(self):
        table, keys = self.make()
        key = keys[0]
        epoch = table.split(key, (("k0#f0", 0), ("k0#f1", 1), ("k0#f2", 2)))
        assert epoch == table.epoch == 1
        assert table.fragments_of(key) == (("k0#f0", 0), ("k0#f1", 1), ("k0#f2", 2))
        assert table.shard_of("k0#f1") == 1
        assert table.shard_of("k0#f2") == 2

    def test_unsplit_drops_fragment_routes_and_homes_the_key(self):
        table, keys = self.make()
        table.split(keys[0], (("k0#f0", 0), ("k0#f1", 2)))
        table.unsplit(keys[0], 2)
        assert table.fragments_of(keys[0]) is None
        assert table.shard_of(keys[0]) == 2
        assert "k0#f1" not in table.overrides

    def test_split_validation(self):
        table, keys = self.make()
        with pytest.raises(ValueError):
            table.split(keys[0], (("k0#f0", 0),))  # < 2 fragments
        with pytest.raises(ValueError):
            table.split(keys[0], (("k0#f0", 0), ("k0#f1", 9)))  # shard range
        table.split(keys[0], (("k0#f0", 0), ("k0#f1", 1)))
        with pytest.raises(ValueError):
            table.split(keys[0], (("k0#f0", 0), ("k0#f1", 1)))  # already split
        with pytest.raises(ValueError):
            table.unsplit(keys[1], 0)  # not split

    def test_copy_and_sync_carry_splits(self):
        table, keys = self.make()
        stale = table.copy()
        table.split(keys[0], (("k0#f0", 0), ("k0#f1", 1)))
        assert stale.fragments_of(keys[0]) is None  # snapshot is independent
        assert stale.sync_from(table)
        assert stale.fragments_of(keys[0]) == table.fragments_of(keys[0])
        assert stale.shard_of("k0#f1") == 1
        table.unsplit(keys[0], 0)
        assert stale.sync_from(table)
        assert stale.fragments_of(keys[0]) is None


class TestPerOpExecWeights:
    """exec_cost_of scales how long an op occupies an execution lane."""

    def run_one(self, machine, op, cost=1.0):
        sim = Simulator(seed=0)
        engine = ExecutionEngine(
            machine, lanes=1, cost=cost, timer=sim.schedule, undo_log=UndoLog()
        )
        engine.submit("r1", op, lambda r, lane: None, True)
        sim.run()
        return sim.now

    def test_default_weight_is_one(self):
        assert StateMachine.exec_cost_of(("anything",)) == 1.0
        took = self.run_one(KVStoreMachine(), ("set", "x", 1))
        assert took == pytest.approx(1.0)

    def test_kv_scan_charges_double(self):
        assert KVStoreMachine.exec_cost_of(("keys",)) == 2.0
        took = self.run_one(KVStoreMachine(), ("keys",))
        assert took == pytest.approx(2.0)

    def test_migration_bulk_ops_charge_4x(self):
        assert KVStoreMachine.exec_cost_of(("mig_prepare", "m1", "k", 1)) == 4.0
        assert KVStoreMachine.exec_cost_of(("mig_install", "m1", "k", ())) == 4.0
        assert KVStoreMachine.exec_cost_of(("mig_forget", "m1")) == 1.0
        assert KVStoreMachine.exec_cost_of(("mig_status", "m1")) == 1.0

    def test_split_ops_charge_4x(self):
        assert SplittableMachine.exec_cost_of(("split_open", "s", "k", (), ())) == 4.0
        assert SplittableMachine.exec_cost_of(("split_close", "s", "k", ())) == 4.0
        machine = BankMachine({"a": 90}, owned=("a",))
        took = self.run_one(machine, ("split_open", "s1", "a", ("a#f0", "a#f1"), (0, 1)))
        assert took == pytest.approx(4.0)

    def test_weighted_ops_delay_the_chain_behind_them(self):
        # A weight-2 scan followed by a conflicting... every kv op after
        # a global-footprint scan waits: 2.0 (scan) + 1.0 (set) = 3.0.
        sim = Simulator(seed=0)
        machine = KVStoreMachine()
        engine = ExecutionEngine(
            machine, lanes=2, cost=1.0, timer=sim.schedule, undo_log=UndoLog()
        )
        done = []
        engine.submit("r1", ("keys",), lambda r, lane: done.append(sim.now), True)
        engine.submit("r2", ("set", "x", 1), lambda r, lane: done.append(sim.now), True)
        sim.run()
        assert done == [pytest.approx(2.0), pytest.approx(3.0)]
