"""Unit tests for the overload harness: arrival processes, the streaming
latency recorder, and the admission-control primitives."""

import math
import random

import pytest

from repro.analysis.stats import percentile
from repro.core.admission import Overloaded, TokenBucket, is_overloaded, traffic_class
from repro.statemachine.base import OpResult
from repro.workload.openloop import (
    DiurnalProcess,
    FlashCrowdProcess,
    LatencyRecorder,
    PoissonProcess,
)

pytestmark = pytest.mark.unit


def sample_arrivals(process, rng, until):
    """Arrival timestamps of ``process`` up to simulated time ``until``."""
    times = []
    t = 0.0
    while True:
        t += process.next_gap(t, rng)
        if t > until:
            return times
        times.append(t)


class TestArrivalProcesses:
    def test_seeded_determinism(self):
        for process in (
            PoissonProcess(2.0),
            DiurnalProcess(base_rate=0.5, peak_rate=4.0, period=100.0),
            FlashCrowdProcess(base_rate=0.5, peak_rate=8.0, at=20.0, ramp=5.0,
                              hold=10.0, decay=5.0),
        ):
            a = sample_arrivals(process, random.Random(7), 200.0)
            b = sample_arrivals(process, random.Random(7), 200.0)
            assert a == b
            assert a != sample_arrivals(process, random.Random(8), 200.0)

    def test_poisson_rate_accuracy(self):
        # Mean arrivals over a long window converge on rate * window.
        times = sample_arrivals(PoissonProcess(2.0), random.Random(1), 5_000.0)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_diurnal_rate_shape_and_accuracy(self):
        process = DiurnalProcess(base_rate=1.0, peak_rate=3.0, period=100.0)
        # Intensity: trough at phase, peak half a period later.
        assert process.rate_at(0.0) == pytest.approx(1.0)
        assert process.rate_at(50.0) == pytest.approx(3.0)
        assert process.rate_at(100.0) == pytest.approx(1.0)
        # Total over whole periods converges on the mean rate (2.0).
        times = sample_arrivals(process, random.Random(2), 5_000.0)
        assert len(times) == pytest.approx(10_000, rel=0.05)
        # Thinning is exact, not just mean-preserving: the peak
        # half-cycle integrates to (mid + 2*amp/pi) / (mid - 2*amp/pi)
        # ~= 1.93x the trough half-cycle's arrivals.
        trough = sum(1 for t in times if (t % 100.0) < 25.0 or (t % 100.0) >= 75.0)
        peak = len(times) - trough
        mid, amp = 2.0, 1.0
        expected = (mid + 2 * amp / math.pi) / (mid - 2 * amp / math.pi)
        assert peak / trough == pytest.approx(expected, rel=0.1)

    def test_flash_crowd_shape(self):
        process = FlashCrowdProcess(
            base_rate=1.0, peak_rate=9.0, at=100.0, ramp=10.0, hold=20.0, decay=10.0
        )
        assert process.rate_at(0.0) == 1.0
        assert process.rate_at(105.0) == pytest.approx(5.0)  # mid-ramp
        assert process.rate_at(120.0) == 9.0  # holding
        assert process.rate_at(135.0) == pytest.approx(5.0)  # mid-decay
        assert process.rate_at(200.0) == 1.0
        # Arrival counts inside vs outside the surge reflect the shape.
        times = sample_arrivals(process, random.Random(3), 1_000.0)
        surge = sum(1 for t in times if 110.0 <= t < 130.0)  # 20u at rate 9
        quiet = sum(1 for t in times if 300.0 <= t < 320.0)  # 20u at rate 1
        assert surge > 3 * max(quiet, 1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)
        with pytest.raises(ValueError):
            DiurnalProcess(base_rate=2.0, peak_rate=1.0, period=10.0)
        with pytest.raises(ValueError):
            FlashCrowdProcess(base_rate=1.0, peak_rate=2.0, at=0.0, ramp=0.0)


class TestLatencyRecorder:
    def test_exact_mode_matches_stats_percentile(self):
        rng = random.Random(5)
        values = [rng.expovariate(0.3) for _ in range(500)]
        recorder = LatencyRecorder()
        for value in values:
            recorder.record(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0):
            assert recorder.quantile(q) == pytest.approx(percentile(values, q))
        assert recorder.count == 500
        assert recorder.min == min(values)
        assert recorder.max == max(values)
        assert recorder.mean == pytest.approx(sum(values) / len(values))

    def test_bucketed_mode_bounded_relative_error(self):
        rng = random.Random(6)
        values = [rng.lognormvariate(1.0, 1.0) for _ in range(20_000)]
        recorder = LatencyRecorder(exact_limit=256, growth=1.02)
        for value in values:
            recorder.record(value)
        # Exact stats survive the collapse.
        assert recorder.count == len(values)
        assert recorder.max == max(values)
        # Quantiles within the bucket-width relative error (~2%, with
        # margin for the rank-vs-interpolation difference).
        for q in (0.5, 0.9, 0.99):
            exact = percentile(values, q)
            assert recorder.quantile(q) == pytest.approx(exact, rel=0.03)

    def test_merge_exact(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        left = [1.0, 5.0, 2.0]
        right = [4.0, 3.0]
        for v in left:
            a.record(v)
        for v in right:
            b.record(v)
        a.merge(b)
        assert a.count == 5
        assert a.quantile(0.5) == 3.0
        assert a.summary()["p50"] == 3.0
        assert b.count == 2  # merge leaves the source untouched

    def test_merge_bucketed_equals_single_recorder(self):
        rng = random.Random(7)
        values = [rng.expovariate(1.0) + 0.01 for _ in range(5_000)]
        merged = LatencyRecorder(exact_limit=128)
        for v in values[:2_500]:
            merged.record(v)
        other = LatencyRecorder(exact_limit=128)
        for v in values[2_500:]:
            other.record(v)
        merged.merge(other)
        single = LatencyRecorder(exact_limit=128)
        for v in values:
            single.record(v)
        assert merged.count == single.count
        for q in (0.5, 0.99, 0.999):
            assert merged.quantile(q) == pytest.approx(single.quantile(q), rel=0.03)

    def test_empty_and_degenerate(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.quantile(0.5)
        assert recorder.summary() == {"count": 0}
        recorder.record(4.2)
        assert recorder.p50 == recorder.p999 == 4.2


class TestAdmissionPrimitives:
    def test_traffic_class_bulkheads_control_ops(self):
        assert traffic_class(("incr",)) == "write"
        assert traffic_class(("deposit", "alice", 5)) == "write"
        assert traffic_class(("mig_prepare", "m1", "k")) == "control"
        assert traffic_class(("split_install", "s1")) == "control"
        assert traffic_class(("tx_prepare", "t1")) == "control"
        assert traffic_class(()) == "write"

    def test_is_overloaded_unwraps_opresult(self):
        shed = Overloaded(cls="write", queue=16, limit=16)
        assert is_overloaded(shed)
        assert is_overloaded(OpResult(ok=False, value=shed, error="overloaded"))
        assert not is_overloaded(OpResult(ok=True, value=3))
        assert not is_overloaded(None)

    def test_token_bucket_rate_and_burst(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        # The full burst is available at t=0, then the rate governs.
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]
        assert bucket.try_acquire(1.0)  # one token refilled
        assert not bucket.try_acquire(1.0)
        assert bucket.acquired == 4
        assert bucket.throttled == 2

    def test_token_bucket_backoff_doubles_and_resets(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, backoff_base=4.0, backoff_cap=10.0)
        bucket.penalize(0.0)
        assert bucket.frozen_until == 4.0
        # Frozen: no refill accrues, even across the window boundary.
        assert not bucket.try_acquire(2.0)
        bucket.penalize(2.0)  # second strike: window doubles
        assert bucket.frozen_until == 2.0 + 8.0
        bucket.penalize(3.0)  # third strike: capped
        assert bucket.frozen_until == 3.0 + 10.0
        # Success resets the strike count; the next penalty is base again.
        bucket.restore()
        bucket.penalize(20.0)
        assert bucket.frozen_until == 24.0
        # After the freeze, refill resumes from the freeze end.
        assert bucket.try_acquire(26.0)
