"""Unit tests for the replica-local read path (OARConfig.read_mode).

Covers: read-only classification on the bundled machines, the server's
read serving (current-state observation, non-read-only rejection, the
read_cost serial service model), and the client's optimistic /
conservative adoption rules.
"""

from typing import Any

import pytest

from repro.core.client import OARClient
from repro.core.messages import ReadReply, ReadRequest
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.sim.process import Process
from repro.statemachine import BankMachine, CounterMachine, KVStoreMachine

pytestmark = pytest.mark.unit


class TestReadOnlyClassification:
    def test_kv(self):
        assert KVStoreMachine.is_read_only(("get", "k"))
        assert KVStoreMachine.is_read_only(("keys",))
        assert not KVStoreMachine.is_read_only(("set", "k", "v"))
        assert not KVStoreMachine.is_read_only(("delete", "k"))
        assert not KVStoreMachine.is_read_only(("cas", "k", "a", "b"))
        # Malformed arities stay on the ordered path.
        assert not KVStoreMachine.is_read_only(("get",))
        assert not KVStoreMachine.is_read_only(())

    def test_bank(self):
        assert BankMachine.is_read_only(("balance", "alice"))
        assert BankMachine.is_read_only(("total",))
        assert not BankMachine.is_read_only(("deposit", "alice", 1))
        assert not BankMachine.is_read_only(("transfer", "a", "b", 1))
        assert not BankMachine.is_read_only(("tx_prepare", "t", "debit", "a", 1))

    def test_migration_family_is_never_read_only(self):
        # Even mig_status must be totally ordered: migration recovery
        # reasons about its position in the shard's order.
        for machine in (KVStoreMachine, BankMachine):
            assert not machine.is_read_only(("mig_status", "m0"))

    def test_default_classifier_is_conservative(self):
        assert not CounterMachine.is_read_only(("value",))


class _ReplySink(Process):
    """Collects ReadReply messages sent back to a fake client pid."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.replies = []

    def on_message(self, src: str, payload: Any) -> None:
        self.replies.append((src, payload))


def build_server(config: OARConfig = None):
    sim = Simulator(seed=0)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = ["p1", "p2", "p3"]
    machine = KVStoreMachine()
    server = OARServer(
        "p1", group, machine, lambda host: ScriptedFailureDetector(),
        config or OARConfig(),
    )
    sink = _ReplySink("c1")
    for peer in ("p2", "p3"):
        network.add_process(_ReplySink(peer))
    network.add_process(server)
    network.add_process(sink)
    network.start_all()
    return sim, server, sink


class TestServerReadServing:
    def test_read_observes_current_state_and_positions(self):
        sim, server, sink = build_server()
        server.machine.apply(("set", "k", "v1"))
        server.on_message("c1", ReadRequest("c1-r0", "c1", ("get", "k")))
        sim.run()
        (_src, reply), = sink.replies
        assert isinstance(reply, ReadReply)
        assert reply.value.ok and reply.value.value == "v1"
        assert reply.position == 0 and reply.settled == 0  # nothing delivered
        assert server.reads_served == 1

    def test_non_read_only_op_is_rejected_deterministically(self):
        sim, server, sink = build_server()
        server.on_message("c1", ReadRequest("c1-r0", "c1", ("set", "k", "v")))
        sim.run()
        (_src, reply), = sink.replies
        assert not reply.value.ok
        assert "not read-only" in reply.value.error
        assert server.machine.state() == {}  # nothing mutated

    def test_read_cost_serializes_service(self):
        # Two reads arriving together leave the replica one read_cost
        # apart: the replica is a serial read pipeline at rate 1/cost.
        sim, server, sink = build_server(OARConfig(read_cost=4.0))
        server.machine.apply(("set", "k", "v1"))
        server.on_message("c1", ReadRequest("c1-r0", "c1", ("get", "k")))
        server.on_message("c1", ReadRequest("c1-r1", "c1", ("get", "k")))
        sim.run()
        assert [r.rid for _s, r in sink.replies] == ["c1-r0", "c1-r1"]
        exec_times = [
            event.time for event in server.env._network.trace.events(kind="read_exec")
        ]
        assert exec_times == [4.0, 8.0]


class _ReadSink(Process):
    """Stands in for a replica: records ReadRequests, never answers."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.read_requests = []

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, ReadRequest):
            self.read_requests.append(payload)


def build_client(read_mode: str, n_servers: int = 3, **kwargs):
    sim = Simulator(seed=0)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n_servers)]
    sinks = {pid: _ReadSink(pid) for pid in group}
    for sink in sinks.values():
        network.add_process(sink)
    client = OARClient(
        "c1",
        group,
        read_mode=read_mode,
        is_read_only=KVStoreMachine.is_read_only,
        **kwargs,
    )
    network.add_process(client)
    network.start_all()
    return sim, client, sinks


def read_reply(rid, value, position=3, settled=3, epoch=0, round=0):
    from repro.statemachine.base import OpResult

    return ReadReply(
        rid=rid, value=OpResult(ok=True, value=value),
        position=position, settled=settled, epoch=epoch, round=round,
    )


class TestClientReadModes:
    def test_sequencer_mode_never_takes_the_read_path(self):
        sim, client, sinks = build_client("sequencer")
        rid = client.submit(("get", "k"))
        assert not rid.startswith("c1-r")
        assert client.read_rids == set()

    def test_optimistic_targets_one_replica_round_robin(self):
        sim, client, sinks = build_client("optimistic")
        for _ in range(3):
            client.submit(("get", "k"))
        sim.run(until=5.0)  # sinks never answer; stop before any retry
        assert [len(s.read_requests) for s in sinks.values()] == [1, 1, 1]

    def test_optimistic_adopts_first_reply(self):
        sim, client, sinks = build_client("optimistic")
        rid = client.submit(("get", "k"))
        client.on_message("p1", read_reply(rid, "v7"))
        assert rid in client.adopted
        adopted = client.adopted[rid]
        assert adopted.value.value == "v7"
        assert not adopted.conservative
        assert adopted.weight == ("p1",)
        assert client.outstanding == 0

    def test_conservative_needs_matching_majority(self):
        sim, client, sinks = build_client("conservative")
        rid = client.submit(("get", "k"))
        sim.run(until=5.0)
        # Every replica was polled.
        assert all(len(s.read_requests) == 1 for s in sinks.values())
        client.on_message("p1", read_reply(rid, "v7"))
        assert rid not in client.adopted  # one voice is not a majority
        client.on_message("p2", read_reply(rid, "v8"))
        assert rid not in client.adopted  # two distinct values
        client.on_message("p3", read_reply(rid, "v7", position=5, settled=5))
        assert rid in client.adopted
        adopted = client.adopted[rid]
        assert adopted.conservative
        assert adopted.weight == ("p1", "p3")
        # The freshest matching observation's position is reported.
        assert adopted.position == 5

    def test_conservative_repolls_on_split_vote(self):
        # retry_interval pinned far out so only the split-vote re-poll
        # (paced by read_retry_delay) drives the resend in this test.
        sim, client, sinks = build_client(
            "conservative", read_retry_delay=2.0, retry_interval=1000.0
        )
        rid = client.submit(("get", "k"))
        sim.run(until=3.0)
        for pid, value in (("p1", "a"), ("p2", "b"), ("p3", "c")):
            client.on_message(pid, read_reply(rid, value))
        assert rid not in client.adopted
        sim.run(until=7.0)  # re-poll at t=5 arrives at the sinks at t=6
        assert all(len(s.read_requests) == 2 for s in sinks.values())
        assert all(s.read_requests[-1].round == 1 for s in sinks.values())
        # Converged second round: majority forms from fresh replies only.
        client.on_message("p1", read_reply(rid, "z", round=1))
        client.on_message("p2", read_reply(rid, "z", round=1))
        assert rid in client.adopted

    def test_conservative_ignores_straggler_from_superseded_round(self):
        # A round-0 reply arriving after the re-poll must not combine
        # with round-1 replies into a majority no instant ever held.
        sim, client, sinks = build_client(
            "conservative", read_retry_delay=2.0, retry_interval=1000.0
        )
        rid = client.submit(("get", "k"))
        sim.run(until=3.0)
        for pid, value in (("p1", "v"), ("p2", "b"), ("p3", "c")):
            client.on_message(pid, read_reply(rid, value))
        sim.run(until=7.0)  # round 1 polled
        client.on_message("p1", read_reply(rid, "v", round=0))  # straggler
        client.on_message("p2", read_reply(rid, "v", round=1))
        assert rid not in client.adopted  # 1 fresh voice, not a majority
        client.on_message("p3", read_reply(rid, "v", round=1))
        assert rid in client.adopted

    def test_optimistic_retry_rotates_target(self):
        # Backoff: base 10, so retries fire at t=10 and t=10+20=30.
        sim, client, sinks = build_client("optimistic", retry_interval=10.0)
        client.submit(("get", "k"))
        sim.run(until=35.0)
        # Initial send to p1, retries rotate to p2 then p3.
        polled = [pid for pid, s in sinks.items() if s.read_requests]
        assert polled == ["p1", "p2", "p3"]
        assert client.read_retransmissions == 2

    def test_reads_retry_even_without_retry_interval(self):
        # The default-config liveness hole: a read sent to a dead
        # replica must still be re-sent eventually (the lazy default
        # interval with backoff), or it hangs forever.
        sim, client, sinks = build_client("optimistic")
        client.submit(("get", "k"))
        default = OARClient.DEFAULT_READ_RETRY_INTERVAL
        sim.run(until=default + 5.0)  # first retry at t=default
        assert client.read_retransmissions == 1
        polled = [pid for pid, s in sinks.items() if s.read_requests]
        assert polled == ["p1", "p2"]

    def test_reads_count_as_outstanding(self):
        sim, client, sinks = build_client("optimistic")
        rid = client.submit(("get", "k"))
        assert client.outstanding == 1
        client.on_message("p1", read_reply(rid, "v"))
        assert client.outstanding == 0
