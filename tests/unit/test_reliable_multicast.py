"""Unit tests for R-multicast: Validity, Agreement, Integrity (Section 3)."""

from typing import Any, List, Tuple

from repro.broadcast.reliable import ReliableMulticast, RMsg
from repro.faults.injection import crash_during_multicast
from repro.sim.component import ComponentProcess
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

import pytest

pytestmark = pytest.mark.unit



class Member(ComponentProcess):
    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.delivered: List[Tuple[str, Any]] = []
        self.rmc = self.add_component(
            ReliableMulticast(self, lambda origin, payload: self.delivered.append((origin, payload)))
        )


def build(n: int = 4, seed: int = 0):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    members = [Member(f"p{i + 1}") for i in range(n)]
    for member in members:
        network.add_process(member)
    network.start_all()
    group = [m.pid for m in members]
    return sim, network, members, group


class TestValidity:
    def test_all_correct_members_deliver(self):
        sim, network, members, group = build()
        members[0].rmc.multicast("hello", group)
        sim.run()
        for member in members:
            assert member.delivered == [("p1", "hello")]

    def test_sender_delivers_locally_when_in_group(self):
        sim, network, members, group = build()
        members[0].rmc.multicast("x", group)
        sim.run()
        assert members[0].delivered == [("p1", "x")]

    def test_external_sender_not_in_group(self):
        sim, network, members, group = build(n=3)
        outsider = Member("client")
        network.start(outsider)
        outsider.rmc.multicast("req", group)
        sim.run()
        assert outsider.delivered == []  # not a group member
        for member in members:
            assert member.delivered == [("client", "req")]


class TestIntegrity:
    def test_no_duplicate_delivery_despite_relays(self):
        sim, network, members, group = build(n=5)
        members[0].rmc.multicast("once", group)
        sim.run()
        for member in members:
            assert len(member.delivered) == 1

    def test_distinct_messages_all_delivered(self):
        sim, network, members, group = build()
        members[0].rmc.multicast("a", group)
        members[1].rmc.multicast("b", group)
        sim.run()
        for member in members:
            assert sorted(p for _o, p in member.delivered) == ["a", "b"]

    def test_message_ids_unique_per_sender(self):
        sim, network, members, group = build(n=2)
        mid1 = members[0].rmc.multicast("a", group)
        mid2 = members[0].rmc.multicast("b", group)
        assert mid1 != mid2


class TestAgreement:
    def test_crash_mid_multicast_still_reaches_all_correct(self):
        # The defining scenario: the sender crashes so that only p2
        # receives the original send; p2's relay completes delivery.
        sim, network, members, group = build(n=4)
        crash_during_multicast(
            network,
            "p1",
            lambda payload: isinstance(payload, RMsg) and payload.payload == "crashy",
            deliver_to={"p2"},
        )
        members[0].rmc.multicast("crashy", group)
        sim.run()
        assert network.is_crashed("p1")
        for member in members[1:]:
            assert member.delivered == [("p1", "crashy")]

    def test_crash_before_any_delivery_means_nobody_delivers(self):
        # Integrity direction: if no correct process received it, none
        # delivers it (the message simply never happened).
        sim, network, members, group = build(n=4)
        crash_during_multicast(
            network,
            "p1",
            lambda payload: isinstance(payload, RMsg),
            deliver_to=set(),
        )
        members[0].rmc.multicast("ghost", group)
        sim.run()
        for member in members[1:]:
            assert member.delivered == []

    def test_relay_happens_even_if_receiver_crashes_after_relaying(self):
        # p2 receives, relays, and crashes before anyone else hears from
        # the (already crashed) origin: relays already in flight complete
        # the dissemination.
        sim, network, members, group = build(n=4)
        crash_during_multicast(
            network,
            "p1",
            lambda payload: isinstance(payload, RMsg),
            deliver_to={"p2"},
        )
        members[0].rmc.multicast("fragile", group)
        # p2 receives at t=1.0 and relays within that event; crash it
        # immediately after.
        network.crash_at(1.0001, "p2")
        sim.run()
        for member in members[2:]:
            assert member.delivered == [("p1", "fragile")]
