"""Unit tests for the baseline protocols' internals.

The integration suite runs them end-to-end; these tests pin the message-
level behaviours: seqno bookkeeping, view takeover, decision merging.
"""

from typing import List

import pytest

from repro.broadcast.ct_abcast import CTAtomicBroadcastServer
from repro.broadcast.sequencer import (
    OrderMsg,
    SequencerAtomicBroadcastServer,
    ViewOrder,
)
from repro.core.messages import Request
from repro.failure.detector import ScriptedFailureDetector
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.unit



def request(n: int, client: str = "c1") -> Request:
    return Request(rid=f"{client}-{n}", client=client, op=("incr",))


class _ClientSink:
    pass


def build_sequencer(n: int = 3):
    sim = Simulator(seed=0)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = [f"p{i + 1}" for i in range(n)]
    servers: List[SequencerAtomicBroadcastServer] = []
    for pid in group:
        server = SequencerAtomicBroadcastServer(
            pid, group, CounterMachine(), ScriptedFailureDetector()
        )
        servers.append(server)
        network.add_process(server)

    from repro.sim.process import Process

    class Client(Process):
        def __init__(self):
            super().__init__("c1")
            self.replies = []

        def on_message(self, src, payload):
            self.replies.append((src, payload))

    client = Client()
    network.add_process(client)
    network.start_all()
    return sim, network, servers, client


class TestSequencerBaseline:
    def test_sequencer_assigns_contiguous_seqnos(self):
        sim, network, servers, _client = build_sequencer()
        p1 = servers[0]
        for index in range(3):
            p1._on_request(request(index))
        sim.run()
        assigns = network.trace.events(kind="seq_assign")
        assert [event["seqno"] for event in assigns] == [1, 2, 3]

    def test_followers_deliver_in_seqno_order_despite_gaps(self):
        _sim, _network, servers, _client = build_sequencer()
        p2 = servers[1]
        p2._on_request(request(0))
        p2._on_request(request(1))
        # Seqno 2 arrives first: must be buffered until 1 fills the gap.
        p2._on_order("p1", OrderMsg(view=0, seqno=2, rid="c1-1"))
        assert p2.delivered_order == ()
        p2._on_order("p1", OrderMsg(view=0, seqno=1, rid="c1-0"))
        assert p2.delivered_order == ("c1-0", "c1-1")

    def test_order_from_suspected_sender_ignored(self):
        _sim, _network, servers, _client = build_sequencer()
        p3 = servers[2]  # p3 never takes over (p2 precedes it)
        p3.fd.force_suspect("p1")
        p3._on_request(request(0))
        # An assignment racing in from the deposed sequencer is dropped.
        p3._on_order("p1", OrderMsg(view=0, seqno=1, rid="c1-0"))
        assert p3.delivered_order == ()

    def test_view_order_adopts_history_and_continues(self):
        _sim, _network, servers, _client = build_sequencer()
        p3 = servers[2]
        p3._on_request(request(0))
        p3._on_request(request(1))
        p3._on_view_order("p2", ViewOrder(view=1, sequence=("c1-0",)))
        assert p3.view == 1
        assert p3.delivered_order == ("c1-0",)
        # Continues with the new sequencer's numbering after the history.
        p3._on_order("p2", OrderMsg(view=1, seqno=2, rid="c1-1"))
        assert p3.delivered_order == ("c1-0", "c1-1")

    def test_view_order_never_undoes(self):
        # A replica that already delivered in the old order keeps its
        # (possibly divergent) history -- that is the baseline's flaw.
        _sim, _network, servers, _client = build_sequencer()
        p3 = servers[2]
        p3._on_request(request(0))
        p3._on_request(request(1))
        p3._on_order("p1", OrderMsg(view=0, seqno=1, rid="c1-1"))
        assert p3.delivered_order == ("c1-1",)
        p3._on_view_order("p2", ViewOrder(view=1, sequence=("c1-0", "c1-1")))
        # c1-1 stays where it was; only the missing c1-0 is appended.
        assert p3.delivered_order == ("c1-1", "c1-0")

    def test_takeover_resequences_pending(self):
        sim, network, servers, _client = build_sequencer()
        p2 = servers[1]
        p2._on_request(request(0))
        p2._on_request(request(1))
        assert not p2.is_sequencer
        p2.fd.force_suspect("p1")
        assert p2.is_sequencer
        assert p2.delivered_order == ("c1-0", "c1-1")
        assert p2.view == 1

    def test_stale_view_order_ignored(self):
        _sim, _network, servers, _client = build_sequencer()
        p3 = servers[2]
        p3.view = 5
        p3._on_view_order("p2", ViewOrder(view=1, sequence=("c1-0",)))
        assert p3.delivered_order == ()


class TestCTAbcastInternals:
    def build(self, n: int = 3):
        sim = Simulator(seed=0)
        network = SimNetwork(sim, latency=ConstantLatency(1.0))
        group = [f"p{i + 1}" for i in range(n)]
        servers = [
            CTAtomicBroadcastServer(
                pid, group, CounterMachine(), ScriptedFailureDetector()
            )
            for pid in group
        ]
        for server in servers:
            network.add_process(server)

        from repro.sim.process import Process

        class Client(Process):
            def __init__(self):
                super().__init__("c1")
                self.replies = []

            def on_message(self, src, payload):
                self.replies.append((src, payload))

        client = Client()
        network.add_process(client)
        network.start_all()
        return sim, network, servers, client

    def test_one_instance_at_a_time(self):
        sim, network, servers, _client = self.build()
        for server in servers:
            server._on_rdeliver("c1", request(0))
            server._on_rdeliver("c1", request(1))
        sim.run(max_events=100_000)
        # Both requests delivered; instance counter advanced identically.
        for server in servers:
            assert server.delivered_order == ("c1-0", "c1-1")
            assert server._instance >= 1

    def test_decision_merge_is_deterministic_across_replicas(self):
        sim, network, servers, _client = self.build()
        # Different replicas see the requests in different local orders.
        servers[0]._on_rdeliver("c1", request(0))
        servers[0]._on_rdeliver("c1", request(1))
        servers[1]._on_rdeliver("c1", request(1))
        servers[1]._on_rdeliver("c1", request(0))
        servers[2]._on_rdeliver("c1", request(0))
        servers[2]._on_rdeliver("c1", request(1))
        sim.run(max_events=100_000)
        orders = {server.delivered_order for server in servers}
        assert len(orders) == 1

    def test_duplicate_rdeliver_ignored(self):
        _sim, _network, servers, _client = self.build()
        server = servers[0]
        server._on_rdeliver("c1", request(0))
        server._on_rdeliver("c1", request(0))
        assert server.r_delivered == ["c1-0"]

    def test_non_request_rdeliver_rejected(self):
        _sim, _network, servers, _client = self.build()
        with pytest.raises(TypeError):
            servers[0]._on_rdeliver("c1", "gibberish")
