"""Unit tests for trace logging, statistics and table formatting."""

import pytest

from repro.analysis.stats import (
    adoption_breakdown,
    latencies_from_trace,
    percentile,
    summarize,
)
from repro.harness.tables import Table, write_result
from repro.sim.trace import NullTrace, TraceEvent, TraceLog

pytestmark = pytest.mark.unit



class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(1.0, "p1", "a", x=1)
        log.record(2.0, "p2", "b", x=2)
        log.record(3.0, "p1", "a", x=3)
        assert len(log) == 3
        assert [e["x"] for e in log.events(kind="a")] == [1, 3]
        assert [e["x"] for e in log.events(pid="p2")] == [2]
        assert [e["x"] for e in log.events(kind="a", pid="p1")] == [1, 3]

    def test_kinds_first_seen_order(self):
        log = TraceLog()
        log.record(1.0, "p", "z")
        log.record(2.0, "p", "a")
        log.record(3.0, "p", "z")
        assert log.kinds() == ["z", "a"]

    def test_event_access(self):
        event = TraceEvent(1.5, "p1", "k", {"rid": "m1"})
        assert event["rid"] == "m1"
        assert event.get("missing") is None
        assert event.get("missing", 7) == 7
        assert "m1" in repr(event)

    def test_clear_and_dump(self):
        log = TraceLog()
        log.record(1.0, "p", "k", v=1)
        assert "k(" in log.dump()
        log.clear()
        assert len(log) == 0
        assert log.dump() == ""

    def test_iteration(self):
        log = TraceLog()
        log.record(1.0, "p", "a")
        log.record(2.0, "p", "b")
        assert [e.kind for e in log] == ["a", "b"]

    def test_kind_index_matches_scan(self):
        log = TraceLog()
        for i in range(50):
            log.record(float(i), f"p{i % 3}", "abc"[i % 3], i=i)
        for kind in "abc":
            assert log.events(kind=kind) == [e for e in log if e.kind == kind]
        assert log.count("a") == sum(1 for e in log if e.kind == "a")
        assert log.count("missing") == 0
        assert log.events(kind="missing") == []

    def test_events_of_kinds_preserves_log_order(self):
        log = TraceLog()
        for i in range(30):
            log.record(float(i), f"p{i % 2}", "xyz"[i % 3], i=i)
        merged = log.events_of_kinds(("x", "z"))
        assert merged == [e for e in log if e.kind in ("x", "z")]
        merged_pid = log.events_of_kinds(("x", "z"), pid="p0")
        assert merged_pid == [e for e in log if e.kind in ("x", "z") and e.pid == "p0"]
        assert log.events_of_kinds(("nope",)) == []

    def test_appended_events_are_indexed(self):
        log = TraceLog()
        log.append(TraceEvent(1.0, "p", "a", {"v": 1}))
        log.record(2.0, "p", "b", v=2)
        log.append(TraceEvent(3.0, "p", "a", {"v": 3}))
        assert [e["v"] for e in log.events(kind="a")] == [1, 3]

    def test_clear_resets_kind_index(self):
        log = TraceLog()
        log.record(1.0, "p", "a")
        log.clear()
        log.record(2.0, "p", "b")
        assert log.events(kind="a") == []
        assert [e.kind for e in log.events(kind="b")] == ["b"]

    def test_level_off_drops_everything(self):
        for log in (TraceLog(level="off"), NullTrace()):
            log.record(1.0, "p", "a", x=1)
            log.append(TraceEvent(2.0, "p", "b", {}))
            assert len(log) == 0
            assert log.events() == []
            assert log.events(kind="a") == []
            assert not log.enabled
        assert TraceLog().enabled

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(level="verbose")

    def test_digest_is_order_and_content_sensitive(self):
        a, b, c = TraceLog(), TraceLog(), TraceLog()
        a.record(1.0, "p", "k", v=1)
        a.record(2.0, "p", "k", v=2)
        b.record(1.0, "p", "k", v=1)
        b.record(2.0, "p", "k", v=2)
        c.record(2.0, "p", "k", v=2)
        c.record(1.0, "p", "k", v=1)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert a.digest() != TraceLog().digest()


class TestStats:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5

    def test_percentile_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.median == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev > 0
        assert "n=" in stats.row()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_latencies_from_trace(self):
        log = TraceLog()
        log.record(1.0, "c1", "adopt", latency=3.0, conservative=False)
        log.record(2.0, "c1", "adopt", latency=5.0, conservative=True)
        log.record(2.0, "c1", "other")
        assert latencies_from_trace(log) == [3.0, 5.0]
        assert adoption_breakdown(log) == {"optimistic": 1, "conservative": 1}


class TestTable:
    def test_render_alignment(self):
        table = Table("Latency", ["protocol", "mean"])
        table.add_row("oar", 3.0)
        table.add_row("sequencer-abcast", 2.5)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Latency"
        assert "protocol" in lines[2]
        assert "3.000" in text
        assert str(table) == text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_write_result(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("unit-test", "hello world")
        assert path.read_text() == "hello world\n"
        assert "hello world" in capsys.readouterr().out
