"""Integration: the replica-local read path under load, crashes, migration.

Every scenario runs the full checker bundle; ``check_read_consistency``
additionally asserts that conservative ("adopted-mode") reads only ever
observe prefix-closed states of the adopted order, and measures (without
failing) how many optimistic reads were stale.
"""

import pytest

from repro.analysis import checkers
from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)
from repro.statemachine import KVStoreMachine

pytestmark = pytest.mark.integration


def total_reads(run):
    return sum(client.reads_adopted for client in run.clients)


class TestFailureFreeReads:
    def test_optimistic_reads_bypass_the_sequencer(self):
        run = run_scenario(
            ScenarioConfig(
                machine="kv",
                n_servers=3,
                n_clients=2,
                requests_per_client=40,
                read_mode="optimistic",
                read_ratio=0.8,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all()
        assert total_reads(run) > 0
        # Reads are answered, never ordered: no read rid appears in any
        # delivery event.
        read_rids = set()
        for client in run.clients:
            read_rids |= client.read_rids
        delivered = {
            event["rid"]
            for event in run.trace.events_of_kinds(("opt_deliver", "a_deliver"))
        }
        assert read_rids and not (read_rids & delivered)
        # Round-robin spread: every replica served some reads.
        assert all(server.reads_served > 0 for server in run.servers)

    def test_conservative_reads_poll_every_replica(self):
        run = run_scenario(
            ScenarioConfig(
                machine="kv",
                n_servers=3,
                n_clients=2,
                requests_per_client=40,
                read_mode="conservative",
                read_ratio=0.8,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all()
        reads = total_reads(run)
        assert reads > 0
        # Conservative mode fans every read out to the whole group.
        assert sum(s.reads_served for s in run.servers) >= 3 * reads
        stats = checkers.check_read_consistency(
            run.trace, run.servers, KVStoreMachine
        )
        assert stats["conservative"] == reads
        assert stats["stale_optimistic"] == 0

    def test_bank_reads(self):
        run = run_scenario(
            ScenarioConfig(
                machine="bank",
                n_servers=3,
                n_clients=2,
                requests_per_client=30,
                read_mode="optimistic",
                seed=4,
            )
        )
        assert run.all_done()
        run.check_all()
        # bank_ops emits balance reads ~20% of the time.
        assert total_reads(run) > 0


class TestReadsUnderCrashFailover:
    def _config(self, read_mode, seed=0):
        return ScenarioConfig(
            machine="kv",
            n_servers=3,
            n_clients=2,
            requests_per_client=25,
            read_mode=read_mode,
            read_ratio=0.7,
            retry_interval=30.0,
            fd_interval=1.0,
            fd_timeout=8.0,
            fault_schedule=FaultSchedule().crash(12.0, "p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=seed,
        )

    def test_optimistic_reads_survive_a_replica_crash(self):
        # p1 (the epoch-0 sequencer) dies; optimistic reads whose
        # round-robin target was p1 are re-sent to the next replica.
        run = run_scenario(self._config("optimistic", seed=1))
        assert run.all_done()
        run.check_all(strict=False)
        assert total_reads(run) > 0

    def test_conservative_reads_survive_a_replica_crash(self):
        # The crashed replica never votes; a quorum among survivors is
        # still a majority of the group, so reads keep completing.
        run = run_scenario(self._config("conservative", seed=1))
        assert run.all_done()
        run.check_all(strict=False)
        assert total_reads(run) > 0


class TestReadsRacingMigration:
    def _run(self, read_mode, seed=7, crash_replica=False):
        def arm(run):
            coordinator = attach_rebalancer(run)

            def kick():
                # Move the two hottest keys, one at a time: reads in
                # flight race mig_prepare (freeze) and mig_install.
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(20.0, kick)
            if crash_replica:
                run.network.crash_at(24.0, "s1.p2")

        return run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_servers=3,
                n_clients=2,
                requests_per_client=40,
                machine="kv",
                workload="readheavy",
                zipf_s=1.5,  # the migrated head keys carry the traffic
                read_mode=read_mode,
                read_ratio=0.85,
                retry_interval=30.0,
                arm=arm,
                grace=300.0,
                horizon=50_000.0,
                seed=seed,
            )
        )

    @pytest.mark.parametrize("read_mode", ["optimistic", "conservative"])
    def test_reads_redirect_through_the_move(self, read_mode):
        run = self._run(read_mode)
        assert run.all_done()
        run.check_all()
        coordinator = run.rebalancers[0]
        assert coordinator.done
        assert coordinator.moves_committed == 2
        # The Zipf head moved while 85% of traffic was reading it:
        # someone must have hit the frozen/exported window.
        assert sum(client.redirects for client in run.clients) > 0
        assert total_reads(run) > 0
        # No operation was stranded by the redirect machinery.
        for client in run.clients:
            assert client.outstanding == 0

    def test_reads_race_migration_and_replica_crash(self):
        run = self._run("conservative", crash_replica=True)
        assert run.all_done()
        run.check_all(strict=False)
        assert run.rebalancers[0].done
        assert total_reads(run) > 0


class TestReadCostScaling:
    def test_read_goodput_scales_with_replicas_not_the_sequencer(self):
        # The B12 claim in miniature: with a costed read pipeline per
        # replica, optimistic read capacity is n/read_cost while the
        # sequencer path pins reads to the single ordering pipeline.
        def makespan(n_servers, read_mode):
            run = run_scenario(
                ScenarioConfig(
                    machine="kv",
                    n_servers=n_servers,
                    n_clients=4,
                    requests_per_client=25,
                    read_mode=read_mode,
                    read_ratio=0.9,
                    driver="open",
                    open_rate=2.0,
                    oar=OARConfig(order_cost=0.5, read_cost=0.5),
                    horizon=100_000.0,
                    grace=100.0,
                    seed=3,
                )
            )
            assert run.all_done()
            run.check_all()
            adopts = [
                event.time
                for event in run.trace.events_of_kinds(("adopt", "read_adopt"))
            ]
            return max(adopts)

        local_3 = makespan(3, "optimistic")
        local_7 = makespan(7, "optimistic")
        ordered_3 = makespan(3, "sequencer")
        # More replicas, faster drain; the ordered path is the slowest.
        assert local_7 < local_3 < ordered_3
