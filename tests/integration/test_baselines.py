"""Integration: the baseline protocols (sequencer ABcast, CT ABcast, passive)."""

import pytest

from repro.analysis import checkers
from repro.broadcast.sequencer import OrderMsg
from repro.faults import FaultSchedule, crash_during_multicast
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.integration



def make_anomaly_config(seed: int, lost_order_index: int = 4) -> ScenarioConfig:
    """A sequencer-baseline config armed to hit the Figure 1(b) window.

    The sequencer crashes while multicasting its ``lost_order_index``-th
    ordering message (nobody receives it, but the sequencer has already
    delivered and replied), and network jitter makes the new sequencer
    see pending requests in its own order.
    """
    from repro.sim.latency import UniformLatency

    def arm(run) -> None:
        counter = {"n": 0}

        def match(payload) -> bool:
            if not isinstance(payload, OrderMsg):
                return False
            counter["n"] += 1
            return counter["n"] > (lost_order_index - 1) * (
                run.config.n_servers - 1
            )

        crash_during_multicast(
            run.network, "p1", match, deliver_to=set(), crash=True
        )

    return ScenarioConfig(
        protocol="sequencer",
        n_clients=3,
        requests_per_client=6,
        latency=UniformLatency(0.5, 1.5),
        fd_interval=1.0,
        fd_timeout=4.0,
        arm=arm,
        grace=150.0,
        seed=seed,
    )


class TestSequencerBaselineFailureFree:
    def test_total_order_and_convergence(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="sequencer",
                n_clients=3,
                requests_per_client=10,
                seed=1,
            )
        )
        assert run.all_done()
        checkers.check_total_order(run.servers)
        checkers.check_replica_convergence(run.servers)
        assert checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        ) == 0

    def test_two_phase_latency(self):
        # Client -> replicas (1) + sequencer order (1) + reply (1) = 3
        # for followers, but the *sequencer's* reply arrives after 2
        # phases, and first-reply adoption takes it: latency 2.
        run = run_scenario(
            ScenarioConfig(
                protocol="sequencer", requests_per_client=10, seed=2
            )
        )
        latencies = run.latencies()
        assert all(abs(latency - 2.0) < 1e-9 for latency in latencies)


class TestSequencerBaselineCrash:
    def test_failover_continues_service(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="sequencer",
                n_clients=2,
                requests_per_client=10,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=FaultSchedule().crash(10.0, "p1"),
                grace=150.0,
                seed=3,
            )
        )
        assert run.all_done()
        # Survivors still agree among themselves...
        checkers.check_total_order(run.correct_servers)
        checkers.check_replica_convergence(run.correct_servers)

    def test_anomaly_is_possible_under_crashes(self):
        # Across seeds, sequencer-crash runs must produce client-visible
        # inconsistencies -- the Figure 1(b) risk the baseline carries by
        # design.  The anomaly needs the crash to swallow an ordering
        # message *after* the sequencer replied (crash mid-multicast) and
        # the new sequencer to see requests in a different order (network
        # jitter) -- exactly the combination the paper describes in
        # Section 2.4.  The scenario-exact version is in test_figures.py.
        total = 0
        for seed in range(8):
            run = run_scenario(
                make_anomaly_config(seed)
            )
            total += checkers.count_baseline_inconsistencies(
                run.trace, run.correct_servers
            )
        assert total >= 1


class TestCTAtomicBroadcast:
    def test_failure_free_consistency(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="ct", n_clients=2, requests_per_client=10, seed=4
            )
        )
        assert run.all_done()
        checkers.check_total_order(run.servers)
        checkers.check_replica_convergence(run.servers)

    def test_latency_exceeds_optimistic_protocols(self):
        run = run_scenario(
            ScenarioConfig(protocol="ct", requests_per_client=10, seed=5)
        )
        latencies = run.latencies()
        # Reduction to consensus costs at least request + estimate +
        # proposal + reply = 4 phases end to end.
        assert min(latencies) >= 4.0

    def test_crash_of_coordinator_tolerated(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="ct",
                n_clients=2,
                requests_per_client=8,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=FaultSchedule().crash(8.0, "p1"),
                grace=300.0,
                seed=6,
            )
        )
        assert run.all_done()
        checkers.check_total_order(run.correct_servers)
        checkers.check_replica_convergence(run.correct_servers)

    def test_never_inconsistent_even_under_crash(self):
        for seed in range(4):
            run = run_scenario(
                ScenarioConfig(
                    protocol="ct",
                    n_clients=2,
                    requests_per_client=6,
                    fd_interval=2.0,
                    fd_timeout=6.0,
                    fault_schedule=FaultSchedule().crash(6.0, "p1"),
                    grace=300.0,
                    seed=seed,
                )
            )
            assert run.all_done()
            assert checkers.count_baseline_inconsistencies(
                run.trace, run.correct_servers
            ) == 0


class TestPassiveReplication:
    def test_failure_free_consistency(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="passive", n_clients=2, requests_per_client=10, seed=7
            )
        )
        assert run.all_done()
        checkers.check_total_order(run.servers)
        checkers.check_replica_convergence(run.servers)

    def test_four_phase_latency(self):
        # request (1) + update (1) + ack (1) + reply (1).
        run = run_scenario(
            ScenarioConfig(protocol="passive", requests_per_client=10, seed=8)
        )
        latencies = run.latencies()
        assert all(abs(latency - 4.0) < 1e-9 for latency in latencies)

    def test_primary_failover(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="passive",
                n_clients=2,
                requests_per_client=10,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=FaultSchedule().crash(10.0, "p1"),
                grace=200.0,
                seed=9,
            )
        )
        assert run.all_done()
        checkers.check_replica_convergence(run.correct_servers)
