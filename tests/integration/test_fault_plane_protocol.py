"""Integration: the OAR protocol hardened against link faults.

The paper's system model assumes reliable FIFO channels; the fault plane
(:mod:`repro.sim.faultplane`) breaks exactly that assumption -- loss,
duplication, corruption, reordering, asymmetric partitions -- and these
tests pin the hardening that keeps the protocol's guarantees standing:

* convergence under sustained drop+duplication (client retransmission +
  the sequencer's anti-entropy ``sync_interval``);
* corrupted payloads detected by the wire checksum and dropped, never
  applied;
* duplicated control messages (``mig_install``, ``split_open`` /
  ``split_close``, ``tx_commit``) absorbed idempotently;
* sequencer equivocation (divergent order certificates for one rid)
  raising the client-side alarm deterministically.
"""

import pytest

from repro.core.client import OARClient
from repro.core.messages import SeqOrder
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sharding import ShardedScenarioConfig, attach_rebalancer, run_sharded_scenario
from repro.sim.faultplane import install_uniform_faults
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.integration


LOSSY = OARConfig(sync_interval=20.0)


class TestConvergenceUnderLoss:
    def test_drop_and_duplication_on_every_link(self):
        # >= 5% independent drop and duplication on every link (the B15
        # acceptance cell): retransmission recovers lost replies and
        # requests, the anti-entropy tick repairs lost order messages,
        # and the full checker bundle stays green.
        config = ScenarioConfig(
            protocol="oar",
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="kv",
            fd_kind="scripted",
            retry_interval=25.0,
            oar=LOSSY,
            faults=lambda net: install_uniform_faults(
                net, drop=0.05, duplicate=0.05
            ),
            seed=0,
        )
        run = run_scenario(config)
        assert run.all_done(), "did not converge under 5% drop + dup"
        run.check_all()
        assert run.network.fault_plane.dropped > 0
        assert run.network.fault_plane.duplicated > 0
        retransmits = sum(c.retransmissions for c in run.clients)
        assert retransmits >= 0  # overhead is reported, loss may be absorbed

    def test_convergence_across_seeds(self):
        for seed in (1, 2, 3):
            config = ScenarioConfig(
                protocol="oar",
                n_servers=3,
                n_clients=2,
                requests_per_client=8,
                machine="counter",
                fd_kind="scripted",
                retry_interval=25.0,
                oar=LOSSY,
                faults=lambda net: install_uniform_faults(
                    net, drop=0.08, duplicate=0.04
                ),
                seed=seed,
            )
            run = run_scenario(config)
            assert run.all_done(), f"seed {seed} did not converge"
            run.check_all()

    def test_corrupted_payloads_never_applied(self):
        config = ScenarioConfig(
            protocol="oar",
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="kv",
            fd_kind="scripted",
            retry_interval=25.0,
            oar=LOSSY,
            faults=lambda net: install_uniform_faults(net, corrupt=0.05),
            seed=4,
        )
        run = run_scenario(config)
        assert run.all_done(), "did not converge under corruption"
        run.check_all()  # includes the corrupt-conservation accounting
        assert run.network.fault_plane.corrupted > 0
        assert run.network.corrupt_dropped == run.network.fault_plane.corrupted

    def test_jitter_reorders_but_protocol_converges(self):
        config = ScenarioConfig(
            protocol="oar",
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="kv",
            fd_kind="scripted",
            retry_interval=25.0,
            oar=LOSSY,
            faults=lambda net: install_uniform_faults(
                net, jitter=0.3, jitter_span=4.0
            ),
            seed=5,
        )
        run = run_scenario(config)
        assert run.all_done()
        run.check_all()
        assert run.network.fault_plane.jittered > 0


class TestGoldenRunStaysClean:
    def test_fault_free_run_reports_zero_fault_counters(self):
        run = run_scenario(
            ScenarioConfig(
                protocol="oar", n_servers=3, n_clients=2,
                requests_per_client=10, machine="kv", seed=6,
            )
        )
        assert run.all_done()
        run.check_all()  # includes the zero-baseline accounting check
        stats = run.network.stats()
        assert stats["corrupt_dropped"] == 0
        assert "dropped" not in stats  # no plane was ever installed

    def test_idle_plane_changes_nothing(self):
        # Installing a plane with no rules must not perturb the run: the
        # trace digest matches a plane-free twin (same seed).
        base = ScenarioConfig(
            protocol="oar", n_servers=3, n_clients=2,
            requests_per_client=10, machine="kv", seed=7,
        )
        bare = run_scenario(base)
        planed = run_scenario(
            base.with_changes(faults=lambda net: net.ensure_fault_plane())
        )
        assert bare.trace.digest() == planed.trace.digest()
        planed.check_all()


class TestDuplicateIdempotence:
    """Satellite: duplicated control messages are absorbed exactly once.

    A ``duplicate=1.0`` kind-targeted policy doubles *every* copy of the
    targeted message family; the checkers (at-most-once, migration and
    fragment atomicity, fault accounting's duplicate-execution sweep)
    prove the duplicates changed nothing.
    """

    def _migration_config(self, **changes):
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(12.0, kick)

        base = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="kv",
            workload="zipf",
            retry_interval=30.0,
            arm=arm,
            grace=200.0,
            horizon=50_000.0,
            seed=11,
        )
        return base.with_changes(**changes)

    def test_duplicated_mig_install_is_idempotent(self):
        config = self._migration_config(
            faults=lambda net: install_uniform_faults(
                net, duplicate=1.0, kind="mig_install"
            ),
        )
        run = run_sharded_scenario(config)
        assert run.all_done()
        run.check_all(strict=False)
        assert run.network.fault_plane.duplicated > 0
        coordinator = run.rebalancers[0]
        assert coordinator.done
        assert coordinator.moves_committed + coordinator.moves_aborted == 2

    def test_duplicated_split_open_and_close_are_idempotent(self):
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]
            coordinator.schedule(10.0, lambda: coordinator.split_key(hot, 2))

        def faults(net):
            install_uniform_faults(net, duplicate=1.0, kind="split_open")
            install_uniform_faults(net, duplicate=1.0, kind="split_close")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="bank",
            workload="hotkey",
            hot_ratio=0.7,
            retry_interval=30.0,
            arm=arm,
            faults=faults,
            grace=200.0,
            horizon=50_000.0,
            seed=12,
        )
        run = run_sharded_scenario(config)
        assert run.all_done()
        run.check_all(strict=False)
        assert run.network.fault_plane.duplicated > 0
        coordinator = run.rebalancers[0]
        assert coordinator.done
        assert all(record.terminal for record in coordinator.journal)

    def test_duplicated_tx_commit_is_idempotent(self):
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="bank",
            workload="cross",
            cross_ratio=0.6,
            retry_interval=30.0,
            faults=lambda net: install_uniform_faults(
                net, duplicate=1.0, kind="tx_commit"
            ),
            grace=200.0,
            horizon=50_000.0,
            seed=13,
        )
        run = run_sharded_scenario(config)
        assert run.all_done()
        run.check_all(strict=False)  # cross-shard atomicity + conservation
        assert run.network.fault_plane.duplicated > 0


class TestEquivocationDetection:
    def _build(self):
        sim = Simulator(seed=5)
        network = SimNetwork(sim, latency=ConstantLatency(1.0))
        group = ["p1", "p2", "p3"]
        servers = []
        for pid in group:
            server = OARServer(
                pid, group, CounterMachine(), ScriptedFailureDetector(),
                OARConfig(batch_interval=5.0),
            )
            servers.append(server)
            network.add_process(server)
        clients = [OARClient(f"c{i + 1}", group) for i in range(2)]
        for client in clients:
            network.add_process(client)
        network.start_all()
        return sim, network, servers, clients

    def test_equivocating_sequencer_raises_the_alarm(self):
        # The sequencer (p1) tells p3 a *different* order than p1/p2
        # execute: the fault-plane rewrite swaps the first two rids of
        # the first multi-rid SeqOrder on the p1 -> p3 link.  Replies
        # then carry divergent (epoch, slot) certificates for the same
        # rid, which the client cross-checks deterministically.
        sim, network, servers, clients = self._build()
        plane = network.ensure_fault_plane()
        swapped = []

        def equivocate(src, dst, payload):
            if swapped or src != "p1" or dst != "p3":
                return None
            if isinstance(payload, SeqOrder) and len(payload.rids) >= 2:
                swapped.append(True)
                rids = list(payload.rids)
                rids[0], rids[1] = rids[1], rids[0]
                return SeqOrder(payload.epoch, tuple(rids), payload.start)
            return None

        plane.add_rewrite(equivocate)
        # Both requests reach the sequencer before its first batch tick,
        # so the first SeqOrder carries both rids.
        sim.schedule_at(0.0, lambda: clients[0].submit(("incr",)))
        sim.schedule_at(0.0, lambda: clients[1].submit(("incr",)))
        sim.run(until=100.0, max_events=200_000)
        assert swapped, "the equivocating rewrite never fired"
        alarms = sum(client.equivocations_detected for client in clients)
        assert alarms > 0, "divergent order certificates went undetected"
        assert network.trace.events(kind="equivocation_alarm")

    def test_no_alarm_on_honest_runs(self):
        sim, network, servers, clients = self._build()
        network.ensure_fault_plane()  # plane installed, no rewrites
        sim.schedule_at(0.0, lambda: clients[0].submit(("incr",)))
        sim.schedule_at(0.0, lambda: clients[1].submit(("incr",)))
        sim.run(until=100.0, max_events=200_000)
        assert all(c.equivocations_detected == 0 for c in clients)
        assert not network.trace.events(kind="equivocation_alarm")


class TestAntiEntropy:
    def test_sync_tick_repairs_a_fully_muted_order_message(self):
        # Kill the *first* SeqOrder copies outright (100% drop on the
        # SeqOrder kind for a window) -- without anti-entropy the
        # replicas would hold the bodies forever and never deliver.
        sim = Simulator(seed=9)
        network = SimNetwork(sim, latency=ConstantLatency(1.0))
        group = ["p1", "p2", "p3"]
        servers = []
        for pid in group:
            server = OARServer(
                pid, group, CounterMachine(), ScriptedFailureDetector(),
                OARConfig(sync_interval=15.0),
            )
            servers.append(server)
            network.add_process(server)
        client = OARClient("c1", group, retry_interval=30.0)
        network.add_process(client)
        network.start_all()
        network.add_interceptor(
            lambda src, dst, payload: not (
                isinstance(payload, SeqOrder) and sim.now < 10.0
            )
        )
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))
        sim.run(until=200.0, max_events=200_000)
        assert len(client.adopted) == 1
        for server in servers:
            assert server.machine.fingerprint() == 1
        assert network.trace.events(kind="seq_sync")
