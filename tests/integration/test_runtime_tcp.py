"""Integration tests for the TCP runtime: sharded parity + transport.

The headline acceptance test: a seeded sharded scenario executed over
:class:`~repro.runtime.tcp.TcpCluster` with the binary codec passes the
*full* ``check_all`` bundle -- the same checkers that gate every sim
run (single-shard safety, read consistency, cross-shard atomicity,
fault-plane and admission accounting, fragment conservation).  The
runtime scenario builder wraps a genuine
:class:`~repro.sharding.cluster.ShardedRun` view, so nothing here is a
weakened parity mode.

The transport-level tests pin the throughput mechanisms directly:
write coalescing (flushes < frames), encode-once fan-out, dead-peer
reconnect accounting, and the trace-level hot-path gate.
"""

import asyncio
from typing import Any, List

import pytest

from repro.runtime.scenario import (
    RuntimeScenarioConfig,
    run_runtime_scenario,
)
from repro.runtime.tcp import TcpCluster
from repro.sharding.cluster import ShardedScenarioConfig
from repro.sim.process import Process

pytestmark = pytest.mark.integration


def _config(**overrides: Any) -> ShardedScenarioConfig:
    base = dict(
        seed=7,
        n_shards=2,
        n_servers=3,
        n_clients=4,
        requests_per_client=10,
        machine="kv",
        workload="uniform",
        n_keys=32,
    )
    base.update(overrides)
    return ShardedScenarioConfig(**base)


class TestShardedParity:
    def test_tcp_binary_sharded_scenario_passes_check_all(self):
        run = run_runtime_scenario(
            RuntimeScenarioConfig(scenario=_config(), backend="tcp")
        )
        assert run.completed
        run.check_all()
        assert run.ops_per_sec() > 0
        stats = run.transport_stats()
        assert stats["frames_sent"] > 0
        assert stats["dropped_frames"] == 0

    def test_tcp_cross_shard_bank_two_phase_commit(self):
        run = run_runtime_scenario(
            RuntimeScenarioConfig(
                scenario=_config(machine="bank", workload="cross", seed=11),
                backend="tcp",
            )
        )
        assert run.completed
        run.check_all()

    def test_tcp_readheavy_optimistic_reads(self):
        run = run_runtime_scenario(
            RuntimeScenarioConfig(
                scenario=_config(
                    machine="bank",
                    workload="readheavy",
                    read_ratio=0.8,
                    read_mode="optimistic",
                    seed=3,
                ),
                backend="tcp",
            )
        )
        assert run.completed
        run.check_all()
        assert sum(c.reads_adopted for c in run.clients) > 0

    def test_asyncio_backend_parity(self):
        run = run_runtime_scenario(
            RuntimeScenarioConfig(scenario=_config(seed=5), backend="asyncio")
        )
        assert run.completed
        run.check_all()

    def test_pickle_codec_reaches_same_quiescence(self):
        run = run_runtime_scenario(
            RuntimeScenarioConfig(scenario=_config(), backend="tcp", codec="pickle")
        )
        assert run.completed
        run.check_all()

    def test_sim_only_features_are_rejected(self):
        with pytest.raises(ValueError, match="sim-only"):
            run_runtime_scenario(
                RuntimeScenarioConfig(
                    scenario=_config(faults={"p1": 1.0}), backend="tcp"
                )
            )
        with pytest.raises(ValueError, match="unknown backend"):
            run_runtime_scenario(
                RuntimeScenarioConfig(scenario=_config(), backend="carrier-pigeon")
            )


class _Recorder(Process):
    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: List[Any] = []

    def on_message(self, src: str, payload: Any) -> None:
        self.received.append((src, payload))


class TestTransport:
    def test_coalescing_shares_writes_and_fanout_encodes_once(self):
        async def scenario():
            cluster = TcpCluster(trace_level="off")
            a = _Recorder("a")
            receivers = [_Recorder(f"r{i}") for i in range(3)]
            cluster.add_process(a)
            for receiver in receivers:
                cluster.add_process(receiver)
            await cluster.start()
            payload = ("broadcast", "x" * 64)
            for _ in range(20):  # same object, fan-out to all receivers
                for receiver in receivers:
                    a.env.send(receiver.pid, payload)
            await cluster.run_until(
                lambda: all(len(r.received) == 20 for r in receivers), timeout=5
            )
            stats = cluster.stats()
            await cluster.shutdown()
            return stats

        stats = asyncio.run(scenario())
        assert stats["frames_sent"] == 60
        # All frames to one destination were emitted in one turn: they
        # share a single flush per connection, not one write per frame.
        assert stats["flushes"] < stats["frames_sent"]
        # The identity cache only re-encodes when the object changes:
        # the same payload object across the whole synchronous burst is
        # one encode, every other send is a hit.
        assert stats["encode_cache_hits"] == 59

    def test_dead_writer_reconnects_once_and_redelivers(self):
        async def scenario():
            cluster = TcpCluster(trace_level="off")
            a, b = _Recorder("a"), _Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            a.env.send("b", "first")
            await cluster.run_until(lambda: len(b.received) == 1, timeout=5)
            # Kill the cached writer out from under the cluster (as if
            # the peer's end dropped): the next flush must reconnect
            # once and still deliver.
            conn = cluster._conns[("a", "b")]
            conn.writer.close()
            await asyncio.sleep(0.01)
            a.env.send("b", "second")
            delivered = await cluster.run_until(
                lambda: len(b.received) == 2, timeout=5
            )
            stats = cluster.stats()
            await cluster.shutdown()
            return delivered, stats

        delivered, stats = asyncio.run(scenario())
        assert delivered
        assert stats["reconnects"] == 1
        assert stats["dropped_frames"] == 0

    def test_frames_to_crashed_peer_are_dropped_not_raised(self):
        async def scenario():
            cluster = TcpCluster(trace_level="off")
            a, b = _Recorder("a"), _Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            cluster.crash("b")  # server closed; no connection exists yet
            a.env.send("b", "into the void")
            await asyncio.sleep(0.05)
            stats = cluster.stats()
            await cluster.shutdown()
            return stats, b.received

        stats, received = asyncio.run(scenario())
        assert received == []
        assert stats["dropped_frames"] >= 0  # no exception escaped is the point

    def test_trace_level_off_disables_recording(self):
        async def scenario():
            cluster = TcpCluster(trace_level="off")
            a = _Recorder("a")
            cluster.add_process(a)
            await cluster.start()
            a.env.trace("custom", x=1)
            await cluster.shutdown()
            return cluster.trace.events()

        assert asyncio.run(scenario()) == []

    def test_flush_bytes_one_writes_per_frame(self):
        """``flush_bytes=1`` recovers the seed's write-per-send shape
        (this is what the wall-clock baseline cell relies on)."""

        async def scenario():
            cluster = TcpCluster(trace_level="off", flush_bytes=1)
            a, b = _Recorder("a"), _Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            # Establish the connection first: frames buffered while the
            # connect is in flight legitimately share its first flush.
            a.env.send("b", "hello")
            await cluster.run_until(lambda: len(b.received) == 1, timeout=5)
            baseline = cluster.stats()["flushes"]
            for index in range(10):
                a.env.send("b", index)
            await cluster.run_until(lambda: len(b.received) == 11, timeout=5)
            stats = cluster.stats()
            await cluster.shutdown()
            return stats["flushes"] - baseline

        assert asyncio.run(scenario()) >= 10

    def test_flush_interval_batches_across_turns(self):
        """With a timed flush window, frames sent in *separate* turns
        still share one write (turn-boundary flushing cannot)."""

        async def scenario():
            cluster = TcpCluster(trace_level="off", flush_interval=0.05)
            a, b = _Recorder("a"), _Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            a.env.send("b", "hello")
            await cluster.run_until(lambda: len(b.received) == 1, timeout=5)
            baseline = cluster.stats()["flushes"]
            for index in range(5):
                a.env.send("b", index)
                await asyncio.sleep(0)  # a fresh event-loop turn per frame
            await cluster.run_until(lambda: len(b.received) == 6, timeout=5)
            stats = cluster.stats()
            await cluster.shutdown()
            return stats["flushes"] - baseline

        assert asyncio.run(scenario()) == 1

    def test_pump_receive_path_delivers_and_reaches_quiescence(self):
        """``direct_dispatch=False`` (the seed's inbox-queue + pump-task
        receive shape, kept for the wall-clock baseline cell) still
        delivers every frame and completes a full sharded run."""

        async def scenario():
            cluster = TcpCluster(trace_level="off", direct_dispatch=False)
            a, b = _Recorder("a"), _Recorder("b")
            cluster.add_process(a)
            cluster.add_process(b)
            await cluster.start()
            for index in range(10):
                a.env.send("b", index)
            delivered = await cluster.run_until(
                lambda: len(b.received) == 10, timeout=5
            )
            await cluster.shutdown()
            return delivered, [payload for _src, payload in b.received]

        delivered, payloads = asyncio.run(scenario())
        assert delivered
        assert payloads == list(range(10))  # per-channel FIFO survives

        run = run_runtime_scenario(
            RuntimeScenarioConfig(
                scenario=_config(),
                backend="tcp",
                codec="pickle",
                flush_bytes=1,
                encode_cache=False,
                tcp_batch_interval=None,
                tcp_direct_dispatch=False,
            )
        )
        assert run.completed
        run.check_all()
