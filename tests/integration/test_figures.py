"""Integration: the paper's figures, asserted event by event.

These are the tightest reproduction artifacts: each test pins the exact
delivery orders, undo sets and client adoptions of the corresponding
figure.  The benchmark suite re-runs them as timed scenarios; here we
assert their semantics.
"""

from repro.analysis import checkers
from repro.harness.figures import (
    run_figure_1a,
    run_figure_1b,
    run_figure_1b_with_oar,
    run_figure_2,
    run_figure_3,
    run_figure_4,
)

import pytest

pytestmark = pytest.mark.integration


M1, M2, M3, M4 = "c1-0", "c1-1", "c1-2", "c1-3"  # figure 2/3 request ids


class TestFigure2:
    """OAR with no failure nor suspicion."""

    def test_all_servers_opt_deliver_all_five_in_order(self):
        run = run_figure_2()
        expected = ("c1-0", "c1-1", "c1-2", "c1-3", "c1-4")
        for pid in ("p1", "p2", "p3"):
            assert run.opt_delivered(pid) == expected

    def test_two_sequencer_batches(self):
        run = run_figure_2()
        batches = [e["rids"] for e in run.trace.events(kind="seq_order")]
        assert batches == [
            ("c1-0", "c1-1"),
            ("c1-2", "c1-3", "c1-4"),
        ]

    def test_phase_two_never_runs(self):
        run = run_figure_2()
        assert run.trace.events(kind="phase2_start") == []
        assert run.trace.events(kind="a_deliver") == []
        assert run.trace.events(kind="opt_undeliver") == []

    def test_client_adopts_all_optimistically(self):
        run = run_figure_2()
        adopted = run.adopted()
        assert len(adopted) == 5
        assert all(not a.conservative for a in adopted.values())
        assert sorted(a.position for a in adopted.values()) == [1, 2, 3, 4, 5]

    def test_full_checker_suite(self):
        run = run_figure_2()
        run_checks(run, group_size=3)


class TestFigure3:
    """Sequencer crash; majority Opt-delivered -> no Opt-undelivery."""

    def test_crash_leaves_only_p2_with_second_batch(self):
        run = run_figure_3()
        assert run.server("p1").crashed
        assert run.opt_delivered("p1") == (M1, M2, M3, M4)
        assert run.opt_delivered("p2") == (M1, M2, M3, M4)
        assert run.opt_delivered("p3") == (M1, M2)

    def test_cnsv_order_outputs_match_figure(self):
        # Bad = ε, New = ε for p2; Bad = ε, New = {m3;m4} for p3.
        run = run_figure_3()
        results = {
            e.pid: (e["bad"], e["new"])
            for e in run.trace.events(kind="cnsv_order")
        }
        assert results["p2"] == ((), ())
        assert results["p3"] == ((), (M3, M4))

    def test_no_opt_undelivery_anywhere(self):
        run = run_figure_3()
        assert run.trace.events(kind="opt_undeliver") == []

    def test_p3_a_delivers_the_missing_suffix(self):
        run = run_figure_3()
        assert run.a_delivered("p3") == (M3, M4)

    def test_survivors_agree_on_final_order(self):
        run = run_figure_3()
        orders = {
            tuple(s.current_order.items) for s in run.correct_servers
        }
        assert orders == {(M1, M2, M3, M4)}

    def test_full_checker_suite(self):
        run = run_figure_3()
        run_checks(run, group_size=3)


class TestFigure4:
    """Sequencer crash; minority optimism -> Opt-undelivery at p2."""

    M1, M2, M3, M4 = "c1-0", "c2-0", "c1-1", "c2-1"

    def test_delivery_pattern_matches_figure(self):
        run = run_figure_4()
        assert run.opt_delivered("p1") == (self.M1, self.M2, self.M3, self.M4)
        assert run.opt_delivered("p2") == (self.M1, self.M2, self.M3, self.M4)
        assert run.opt_delivered("p3") == (self.M1, self.M2)
        assert run.opt_delivered("p4") == (self.M1, self.M2)

    def test_p2_undelivers_in_reverse_order(self):
        run = run_figure_4()
        assert run.opt_undelivered("p2") == (self.M4, self.M3)

    def test_cnsv_order_outputs_match_figure(self):
        run = run_figure_4()
        epoch0 = {
            e.pid: (e["bad"], e["new"])
            for e in run.trace.events(kind="cnsv_order")
            if e["epoch"] == 0
        }
        assert epoch0["p2"] == ((self.M3, self.M4), (self.M4, self.M3))
        assert epoch0["p3"] == ((), (self.M4, self.M3))
        assert epoch0["p4"] == ((), (self.M4, self.M3))

    def test_decision_excludes_minority_value(self):
        run = run_figure_4()
        event = next(
            e for e in run.trace.events(kind="cnsv_order") if e.pid == "p2"
        )
        decided_pids = {pid for pid, _v in event["decision"]}
        assert decided_pids == {"p3", "p4"}

    def test_agreed_epoch_order_is_m1_m2_m4_m3(self):
        run = run_figure_4()
        expected = (self.M1, self.M2, self.M4, self.M3)
        for server in run.correct_servers:
            assert tuple(server.settled_order.items)[:4] == expected

    def test_clients_adopt_only_consistent_replies(self):
        run = run_figure_4()
        adopted = run.adopted()
        assert adopted[self.M3].position == 4  # m3 settled after m4
        assert adopted[self.M4].position == 3
        assert adopted[self.M3].conservative
        assert adopted[self.M4].conservative

    def test_full_checker_suite(self):
        run = run_figure_4()
        run_checks(run, group_size=4)


class TestFigure1:
    """The sequencer-baseline stack scenario (motivating example)."""

    def test_good_run_consistent(self):
        run = run_figure_1a()
        for server in run.servers:
            assert server.delivered_order == ("c2-0", "c1-0")
            assert server.machine.fingerprint() == ("x",)
        adopted = run.adopted()
        assert adopted["c2-0"].value.value == "y"
        assert checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        ) == 0

    def test_bad_run_exhibits_external_inconsistency(self):
        run = run_figure_1b()
        adopted = run.adopted()
        # The client adopted pop -> y from the doomed sequencer...
        assert adopted["c2-0"].value.value == "y"
        # ...but the surviving replicas delivered (push; pop): pop -> x.
        for server in run.correct_servers:
            assert server.delivered_order == ("c1-0", "c2-0")
            assert server.machine.fingerprint() == ("y",)
        assert checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        ) == 1

    def test_oar_on_same_scenario_stays_consistent(self):
        run = run_figure_1b_with_oar()
        adopted = run.adopted()
        # OAR's client adopts pop -> x, matching the survivors.
        assert adopted["c2-0"].value.value == "x"
        assert adopted["c2-0"].conservative
        checkers.check_external_consistency(run.trace)
        assert checkers.count_baseline_inconsistencies(
            run.trace, run.correct_servers
        ) == 0


def run_checks(run, group_size):
    checkers.check_cnsv_order_properties(run.trace, group_size)
    checkers.check_majority_guarantee(run.trace, group_size)
    checkers.check_at_most_once(run.trace, run.servers)
    checkers.check_total_order(run.correct_servers)
    checkers.check_replica_convergence(run.correct_servers)
    checkers.check_external_consistency(run.trace)
