"""Integration: OAR under crash faults (sequencer and others)."""

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.integration



def crash_config(n_servers, victim, when, seed, **kwargs):
    return ScenarioConfig(
        n_servers=n_servers,
        n_clients=2,
        requests_per_client=kwargs.pop("requests", 12),
        fd_interval=2.0,
        fd_timeout=6.0,
        fault_schedule=FaultSchedule().crash(when, victim),
        grace=150.0,
        seed=seed,
        **kwargs,
    )


class TestSequencerCrash:
    def test_service_survives_and_stays_consistent(self):
        run = run_scenario(crash_config(3, "p1", 10.0, seed=1))
        assert run.all_done()
        run.check_all()
        assert run.trace.events(kind="phase2_start")

    def test_epoch_advances_and_sequencer_rotates(self):
        run = run_scenario(crash_config(3, "p1", 10.0, seed=2))
        survivors = run.correct_servers
        assert all(server.epoch >= 1 for server in survivors)
        assert all(server.current_sequencer != "p1" for server in survivors)

    @pytest.mark.parametrize("n_servers", [3, 5, 7])
    def test_various_group_sizes(self, n_servers):
        run = run_scenario(crash_config(n_servers, "p1", 12.0, seed=n_servers))
        assert run.all_done()
        run.check_all()

    def test_crash_before_any_request(self):
        run = run_scenario(crash_config(3, "p1", 0.5, seed=4))
        assert run.all_done()
        run.check_all()

    def test_two_crashes_with_majority_left(self):
        schedule = FaultSchedule().crash(10.0, "p1").crash(30.0, "p2")
        run = run_scenario(
            ScenarioConfig(
                n_servers=5,
                n_clients=2,
                requests_per_client=10,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=schedule,
                grace=200.0,
                seed=5,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_conservative_replies_after_crash(self):
        run = run_scenario(crash_config(3, "p1", 5.0, seed=6))
        assert any(
            adoption["conservative"]
            for adoption in run.trace.events(kind="adopt")
        )


class TestNonSequencerCrash:
    def test_follower_crash_does_not_trigger_phase2(self):
        # Only suspicion of the *sequencer* moves the protocol to phase 2
        # (Task 1c); a crashed follower is simply suspected and ignored.
        run = run_scenario(crash_config(3, "p3", 10.0, seed=7))
        assert run.all_done()
        run.check_all()
        assert run.trace.events(kind="phase2_start") == []

    def test_majority_weight_still_reachable(self):
        # n=3 with one follower down: the sequencer + one follower still
        # give weight 2 = majority.
        run = run_scenario(crash_config(3, "p2", 8.0, seed=8))
        assert run.all_done()
        assert all(
            not adoption["conservative"]
            for adoption in run.trace.events(kind="adopt")
        )


class TestFixedSequencerAblation:
    def test_rotation_disabled_still_progresses_after_crash(self):
        # With rotation off and the (crashed) p1 staying sequencer, each
        # epoch immediately re-enters phase 2: requests settle through the
        # conservative path only.  Slow but safe -- the pathology the
        # rotating-coordinator paragraph of Section 5.3 warns about.
        run = run_scenario(
            crash_config(
                3,
                "p1",
                5.0,
                seed=9,
                requests=4,
                oar=OARConfig(rotate_sequencer=False),
                horizon=3_000.0,
            )
        )
        assert run.all_done()
        run.check_all(at_least_once=False)
        survivors = run.correct_servers
        assert all(server.current_sequencer == "p1" for server in survivors)
        assert all(server.epoch >= 2 for server in survivors)
