"""Integration: live shard rebalancing (repro.sharding.rebalance).

Online key migration between OAR groups must preserve every per-shard
paper property, cross-shard 2PC atomicity, and the migration invariants
(single owner per key, nothing lost or duplicated, conservation) -- with
traffic in flight, with stale client routing tables, and across a
coordinator crash followed by recovery.
"""

import pytest

from repro.analysis import checkers
from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)

pytestmark = pytest.mark.integration


def _arm_single_move(run, start_at=30.0, key_index=0):
    """Attach a coordinator that migrates one key at ``start_at``."""
    coordinator = attach_rebalancer(run)
    key = run.key_universe[key_index]
    src = run.routing_table.shard_of(key)
    dst = (src + 1) % run.config.n_shards
    coordinator.schedule(start_at, lambda: coordinator.migrate(key, dst))
    return coordinator


class TestSingleMigration:
    def test_key_moves_and_clients_redirect(self):
        state = {}

        def arm(run):
            state["coordinator"] = _arm_single_move(run)
            state["key"] = run.key_universe[0]
            state["src"] = run.routing_table.shard_of(state["key"])

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=30,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,  # key 0 is hot, so traffic hits the move
                seed=5,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        coordinator = state["coordinator"]
        assert coordinator.done
        record = coordinator.journal[0]
        assert record.phase == "done"
        # Routing epoch bumped; authority routes the key to its new home.
        assert run.routing_table.epoch == 1
        dst = run.routing_table.shard_of(state["key"])
        assert dst != state["src"]
        # The destination replicas own the key now, the source's don't.
        for server in run.correct_servers(dst):
            assert server.machine.owns(state["key"])
        for server in run.correct_servers(state["src"]):
            assert not server.machine.owns(state["key"])
        # Some client hit the stale route and was redirected.
        assert sum(client.redirects for client in run.clients) > 0
        # Redirect retries are not new demand: the exact (undecayed)
        # submission book must count each logical operation once.
        total_load = sum(
            count
            for client in run.clients
            for count in client.key_load.counts().values()
        )
        assert total_load == run.config.n_clients * run.config.requests_per_client
        run.check_all()

    def test_value_survives_the_move(self):
        # A key written before the migration must read back identically
        # after it, from the new shard.
        def arm(run):
            _arm_single_move(run, start_at=40.0)

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=1,
                requests_per_client=40,
                machine="kv",
                workload="zipf",
                zipf_s=1.8,
                seed=9,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        run.check_all()
        key = run.key_universe[0]
        dst = run.routing_table.shard_of(key)
        values = {
            server.machine.state().get(key)
            for server in run.correct_servers(dst)
        }
        assert len(values) == 1  # replicas agree on the migrated value

    def test_rebalance_plans_off_the_hot_shard(self):
        # Range router + Zipf: the hot keys are contiguous on shard 0,
        # so the planner must move load off shard 0.
        state = {}

        def arm(run):
            coordinator = attach_rebalancer(run, start_at=80.0, max_moves=4)
            state["coordinator"] = coordinator

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=4,
                n_clients=4,
                requests_per_client=40,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,
                router="range",
                n_keys=32,
                seed=2,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        coordinator = state["coordinator"]
        assert coordinator.done
        assert coordinator.moves_committed > 0
        hot_keys = [record.key for record in coordinator.journal]
        # The hottest (lowest-index) keys are the ones worth moving, and
        # the first move comes off the hot shard (later moves may trim
        # whichever shard the greedy plan finds hottest next).
        assert run.key_universe[0] in hot_keys
        assert coordinator.journal[0].src == 0
        run.check_all()


class TestAutoTriggeredRebalance:
    def test_sustained_skew_fires_without_a_scheduled_kick(self):
        # Range router + Zipf packs the head on shard 0; nobody ever
        # calls rebalance() -- the policy tick must notice the sustained
        # hot/cold imbalance in the decayed counters and fire the plan
        # itself (ROADMAP open item: trigger on load, not on the clock).
        state = {}

        def arm(run):
            state["coordinator"] = attach_rebalancer(
                run,
                auto=True,
                auto_interval=20.0,
                auto_ratio=2.0,
                auto_sustain=2,
                auto_min_load=5.0,
                max_moves=4,
            )

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=4,
                n_clients=4,
                requests_per_client=60,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,
                router="range",
                n_keys=32,
                seed=3,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        coordinator = state["coordinator"]
        assert coordinator.auto_rebalances >= 1
        assert coordinator.moves_committed > 0
        # The policy acted on the packed Zipf head: the first plan's
        # moves come off the hot shard.
        first_wave = coordinator.journal[: coordinator.moves_committed]
        assert any(record.src == 0 for record in first_wave)
        assert len(run.trace.events(kind="rebalance_strike")) >= 2
        assert len(run.trace.events(kind="rebalance_auto")) >= 1
        run.check_all()

    def test_balanced_uniform_load_never_fires(self):
        state = {}

        def arm(run):
            state["coordinator"] = attach_rebalancer(
                run, auto=True, auto_interval=20.0, auto_ratio=3.0,
                auto_sustain=2, auto_min_load=5.0,
            )

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=40,
                machine="kv",
                workload="uniform",
                n_keys=32,
                seed=4,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        assert state["coordinator"].auto_rebalances == 0
        assert state["coordinator"].journal == []
        run.check_all()


class TestMigrationVsCrossShard2PC:
    @pytest.mark.parametrize("seed", range(3))
    def test_interleaved_migrations_and_transfers(self, seed):
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=5.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:3]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            run.sim.schedule_at(20.0 + 7 * seed, kick)

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=25,
                machine="bank",
                workload="cross",
                cross_ratio=0.5,
                seed=seed,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        assert sum(client.cross_shard_committed for client in run.clients) > 0
        run.check_all()  # per-shard + 2PC + migration atomicity/conservation


class TestCoordinatorCrash:
    def test_crash_mid_migration_then_recovery(self):
        # Crash the coordinator right after it submits mig_prepare and
        # before the install can land: the key's state is stranded in
        # the source shard's outbound escrow (owned by nobody), clients
        # spin on redirects, and a recovery coordinator adopting the
        # journal completes the move.
        state = {}

        def arm(run):
            coordinator = attach_rebalancer(run)
            state["coordinator"] = coordinator
            key = run.key_universe[0]
            state["key"] = key
            src = run.routing_table.shard_of(key)
            state["src"] = src
            dst = (src + 1) % run.config.n_shards
            run.sim.schedule_at(30.0, lambda: coordinator.migrate(key, dst))
            # The prepare is opt-delivered at the source replicas by
            # t=32 (one hop to the group, one to order), but the
            # coordinator only adopts at t=33 -- crash inside that
            # window, before the install can even be submitted.
            run.sim.schedule_at(
                32.5, lambda: run.network.crash(coordinator.client.pid)
            )

            def snapshot_stranded():
                # Mid-crash invariant: nobody owns the key, the source
                # escrow holds its state (checker's non-quiescent mode).
                checkers.check_migration_atomicity(
                    run.trace,
                    run.shards,
                    run.routing_table,
                    run.key_universe,
                    expected_total=run.initial_total,
                    quiescent=False,
                )
                owners = [
                    shard
                    for shard in range(run.config.n_shards)
                    if run.correct_servers(shard)
                    and run.correct_servers(shard)[0].machine.owns(key)
                ]
                state["stranded_owners"] = owners
                state["stranded_escrow"] = run.correct_servers(src)[
                    0
                ].machine.outbound_migrations()

            run.sim.schedule_at(60.0, snapshot_stranded)

            def recover():
                recovery = attach_rebalancer(run, pid="rb2")
                recovery.resume(coordinator.journal)
                state["recovery"] = recovery

            run.sim.schedule_at(80.0, recover)

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=30,
                machine="bank",
                # Same-shard transfers only: a cross-shard escrow hold on
                # the account would (correctly) veto the export and the
                # crash would hit before any state was stranded -- the
                # interleaving case has its own test above.
                workload="cross",
                cross_ratio=0.0,
                seed=11,
                arm=arm,
                horizon=50_000.0,
                grace=100.0,
            )
        )
        assert run.all_done()
        # The crash really hit mid-migration: the key was ownerless and
        # escrowed when we looked.
        assert state["stranded_owners"] == []
        assert len(state["stranded_escrow"]) == 1
        # Recovery finished the move and bumped the epoch.
        recovery = state["recovery"]
        assert recovery.done
        assert recovery.journal[-1].phase == "done"
        assert run.routing_table.epoch >= 1
        dst = run.routing_table.shard_of(state["key"])
        assert dst != state["src"]
        run.check_all(strict=False)

    def test_check_all_tolerates_stranded_migration_without_recovery(self):
        # A coordinator crash with no recovery leaves the migration
        # stranded forever.  That is incomplete, not non-atomic:
        # check_all must fall back to safety-only migration checks
        # instead of raising "migrations never completed".
        def arm(run):
            coordinator = attach_rebalancer(run)
            key = run.key_universe[5]  # a cold key: no escrow interference
            src = run.routing_table.shard_of(key)
            dst = (src + 1) % run.config.n_shards
            run.sim.schedule_at(30.0, lambda: coordinator.migrate(key, dst))
            run.sim.schedule_at(
                32.5, lambda: run.network.crash(coordinator.client.pid)
            )

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=10,
                machine="kv",
                workload="uniform",
                seed=8,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()  # crashed coordinators do not block quiescence
        coordinator = run.rebalancers[0]
        assert any(not record.terminal for record in coordinator.journal)
        run.check_all()  # safety holds; completeness is correctly waived

    def test_duplicate_prepare_reprobes_status_instead_of_aborting(self):
        # Recovery race: a restarted migration's prepare can lose to the
        # crashed coordinator's still-in-flight original prepare and be
        # rejected with "already prepared".  That rejection is proof the
        # state *is* escrowed -- the coordinator must re-probe status
        # and continue the install, never abort (which would strand the
        # key ownerless forever).
        from repro.sharding.cluster import build_sharded_scenario

        run = build_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2, n_clients=1, requests_per_client=1, machine="kv", seed=1
            )
        )
        coordinator = attach_rebalancer(run)
        key = run.key_universe[0]
        src = run.routing_table.shard_of(key)
        dst = 1 - src
        record = coordinator.migrate(key, dst)
        run.sim.run(until=2.0)  # the real prepare is now in flight

        # Simulate the duplicate rejection the race produces.
        from repro.statemachine.base import OpResult

        coordinator._on_prepare(
            record,
            OpResult(ok=False, error=f"mig_prepare: {record.mid} already prepared"),
        )
        assert record.phase != "aborted"
        # A status probe went out; letting the run continue completes
        # the migration normally from the escrowed state.
        run.sim.run(until=run.sim.now + 100.0)
        assert record.phase == "done"
        assert run.routing_table.shard_of(key) == dst

    def test_recovery_of_fully_completed_migration_is_noop(self):
        # Resume a journal whose migration already finished: the status
        # probes find unknown-at-source/installed-at-destination and the
        # recovery must not double-install or double-bump the epoch.
        state = {}

        def arm(run):
            coordinator = _arm_single_move(run, start_at=20.0)
            state["coordinator"] = coordinator

            def recover():
                recovery = attach_rebalancer(run, pid="rb2")
                # Pretend the first coordinator crashed post-completion
                # but its journal was snapshotted mid-flight.
                journal = [r for r in coordinator.journal]
                for record in journal:
                    record.phase = "installing"  # stale snapshot
                recovery.resume(journal)
                state["recovery"] = recovery

            run.sim.schedule_at(120.0, recover)

        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=30,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,
                seed=6,
                arm=arm,
                horizon=50_000.0,
            )
        )
        assert run.all_done()
        assert state["recovery"].done
        assert run.routing_table.epoch == 1  # bumped exactly once
        run.check_all()
