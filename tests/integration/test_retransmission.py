"""Integration: client retransmission and the server-side reply cache.

Replies travel on plain channels (they die with a crashing server or a
lossy link), so the client can starve even though its request was
delivered and executed.  Retransmitting the same request must never
re-execute it (at-most-once) but must re-produce the cached reply.
"""

from typing import Any, List

from repro.core.client import OARClient
from repro.core.messages import Reply, Request
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import ScriptedFailureDetector
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import CounterMachine

import pytest

pytestmark = pytest.mark.integration



def build(retry_interval=10.0):
    sim = Simulator(seed=5)
    network = SimNetwork(sim, latency=ConstantLatency(1.0))
    group = ["p1", "p2", "p3"]
    servers = []
    for pid in group:
        server = OARServer(
            pid, group, CounterMachine(), ScriptedFailureDetector(), OARConfig()
        )
        servers.append(server)
        network.add_process(server)
    client = OARClient("c1", group, retry_interval=retry_interval)
    network.add_process(client)
    network.start_all()
    return sim, network, servers, client


class TestRetransmission:
    def test_lost_replies_recovered_by_retry(self):
        sim, network, servers, client = build(retry_interval=10.0)
        # Drop every reply for the first 5 time units.
        network.add_interceptor(
            lambda src, dst, payload: not (
                isinstance(payload, Reply) and sim.now < 5.0
            )
        )
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))
        sim.run(until=60.0, max_events=100_000)
        assert len(client.adopted) == 1
        assert client.retransmissions >= 1
        # Exactly-once execution despite the duplicate request.
        for server in servers:
            assert server.machine.fingerprint() == 1
            assert len(server.current_order) == 1

    def test_retry_does_not_duplicate_execution(self):
        sim, network, servers, client = build(retry_interval=2.0)
        # Replies flow normally; the aggressive retry races the first
        # adoption and must be harmless.
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))
        sim.schedule_at(8.0, lambda: client.submit(("incr",)))
        sim.run(until=80.0, max_events=100_000)
        assert len(client.adopted) == 2
        values = sorted(a.value.value for a in client.adopted.values())
        assert values == [1, 2]
        for server in servers:
            assert server.machine.fingerprint() == 2

    def test_cached_reply_resent_for_duplicate_rid(self):
        sim, network, servers, client = build(retry_interval=None)
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))
        sim.run(until=20.0, max_events=50_000)
        assert len(client.adopted) == 1
        # Hand-craft a duplicate of the same request (a "late relay").
        request = Request(rid="c1-0", client="c1", op=("incr",))
        replies_before = client.late_replies
        for server in servers:
            server._task0_request(request)
        sim.run(until=40.0, max_events=50_000)
        # The duplicates were answered from the cache (late replies at
        # the already-adopted client), not re-executed.
        assert client.late_replies > replies_before
        for server in servers:
            assert server.machine.fingerprint() == 1

    def test_no_retries_when_replies_flow(self):
        sim, network, servers, client = build(retry_interval=50.0)
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))
        sim.run(until=200.0, max_events=50_000)
        assert client.retransmissions == 0

    def test_retry_during_phase2_is_safe(self):
        sim, network, servers, client = build(retry_interval=3.0)
        detectors = {s.pid: s.fd for s in servers}
        sim.schedule_at(0.0, lambda: client.submit(("incr",)))

        def suspect():
            for pid in ("p2", "p3"):
                detectors[pid].force_suspect("p1")

        sim.schedule_at(1.5, suspect)
        sim.run(until=100.0, max_events=200_000)
        assert len(client.adopted) == 1
        for server in servers:
            assert server.machine.fingerprint() == 1
