"""Integration: boundary group sizes and client crashes.

Proposition 4's second disjunct -- "or if a correct *server* receives
request m" -- covers the case where the client itself dies right after
(or during) its multicast: the request must still settle at every
correct server even though nobody is waiting for the reply.
"""

import pytest

from repro.analysis import checkers
from repro.core.messages import Request
from repro.broadcast.reliable import RMsg
from repro.faults import crash_during_multicast
from repro.harness import ScenarioConfig, run_scenario
from repro.harness.scenario import build_scenario

pytestmark = pytest.mark.integration



class TestGroupSizeBoundaries:
    def test_single_server_group(self):
        # Degenerate Π = {p1}: the sequencer endorses itself; weight 1 is
        # the majority of 1.
        run = run_scenario(
            ScenarioConfig(n_servers=1, requests_per_client=5, seed=1)
        )
        assert run.all_done()
        values = sorted(a.value.value for a in run.adopted().values())
        assert values == [1, 2, 3, 4, 5]

    def test_two_server_group(self):
        # n=2: majority weight 2, so adoption always needs the follower's
        # endorsement; zero crash tolerance but full consistency.
        run = run_scenario(
            ScenarioConfig(n_servers=2, requests_per_client=8, seed=2)
        )
        assert run.all_done()
        run.check_all()
        for adoption in run.trace.events(kind="adopt"):
            assert len(adoption["weight"]) == 2

    def test_even_group_majority(self):
        # n=4: majority is 3; one opt reply (weight 2) is never enough.
        run = run_scenario(
            ScenarioConfig(n_servers=4, requests_per_client=6, seed=3)
        )
        assert run.all_done()
        run.check_all()
        assert run.clients[0].majority_weight == 3


class TestClientCrash:
    def test_request_settles_after_client_crash(self):
        # The client dies immediately after its multicast leaves: servers
        # still deliver (nobody adopts -- the client is gone).
        run = build_scenario(
            ScenarioConfig(n_servers=3, n_clients=1, requests_per_client=1,
                           seed=4, grace=30.0)
        )
        client = run.clients[0]
        run.sim.schedule_at(0.5, lambda: run.network.crash(client.pid))
        run.execute()
        for server in run.servers:
            assert tuple(server.current_order.items) == ("c1-0",)
        checkers.check_total_order(run.servers)
        checkers.check_replica_convergence(run.servers)

    def test_client_crash_mid_multicast_relay_completes(self):
        # The client crashes while multicasting so only p2 receives the
        # request directly; the R-multicast relay must still spread it
        # (Prop. 4 via "a correct server receives m").
        run = build_scenario(
            ScenarioConfig(n_servers=3, n_clients=1, requests_per_client=1,
                           seed=5, grace=30.0)
        )
        client = run.clients[0]
        crash_during_multicast(
            run.network,
            client.pid,
            lambda payload: isinstance(payload, RMsg)
            and isinstance(payload.payload, Request),
            deliver_to={"p2"},
        )
        run.execute()
        assert run.network.is_crashed(client.pid)
        for server in run.servers:
            assert tuple(server.current_order.items) == ("c1-0",)

    def test_client_crash_before_any_delivery_is_clean(self):
        # Nobody received the request: it simply never happened; the
        # group stays empty and consistent.
        run = build_scenario(
            ScenarioConfig(n_servers=3, n_clients=1, requests_per_client=1,
                           seed=6, grace=30.0)
        )
        client = run.clients[0]
        crash_during_multicast(
            run.network,
            client.pid,
            lambda payload: isinstance(payload, RMsg),
            deliver_to=set(),
        )
        run.execute()
        for server in run.servers:
            assert len(server.current_order) == 0

    def test_surviving_clients_unaffected(self):
        run = build_scenario(
            ScenarioConfig(n_servers=3, n_clients=2, requests_per_client=5,
                           seed=7, grace=60.0)
        )
        doomed, survivor = run.clients
        run.sim.schedule_at(4.0, lambda: run.network.crash(doomed.pid))
        run.execute()
        assert len(survivor.adopted) == 5
        checkers.check_external_consistency(run.trace, strict=False)
        checkers.check_total_order(run.servers)
