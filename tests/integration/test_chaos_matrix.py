"""Chaos matrix: crash/failover + live migration under seed x latency sweeps.

This module is the workload behind the CI ``chaos-matrix`` job (nightly
``schedule:`` and the ``chaos`` PR label): every cell of the matrix runs
it with a different ``CHAOS_SEED`` and ``CHAOS_LATENCY`` so the same
scenarios are exercised across many timings::

    CHAOS_SEED=3 CHAOS_LATENCY=jitter \
        python -m pytest tests/integration/test_chaos_matrix.py -q

Environment knobs (all optional -- the defaults make this an ordinary
member of the tier-1 suite):

``CHAOS_SEED``
    Base seed for every scenario in the module (default 0).
``CHAOS_LATENCY``
    Latency profile: ``constant`` (the paper's one-hop unit),
    ``jitter`` (uniform 0.5-1.5) or ``tail`` (truncated normal with a
    fat-ish deviation) -- reordering across links is where optimistic
    delivery earns its undo machinery.
``CHAOS_ARTIFACT_DIR``
    Where to drop a failing run's trace digest + scenario description
    (default ``chaos-artifacts``); the CI job uploads this directory so
    a red matrix cell is reproducible from the artifact alone.
"""

import os

import pytest

from repro.faults import FaultSchedule
from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)
from repro.sim.latency import ConstantLatency, NormalLatency, UniformLatency

pytestmark = pytest.mark.integration

SEED = int(os.environ.get("CHAOS_SEED", "0"))
LATENCY = os.environ.get("CHAOS_LATENCY", "constant")
ARTIFACT_DIR = os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts")

LATENCY_PROFILES = ("constant", "jitter", "tail")


def make_latency():
    if LATENCY == "constant":
        return ConstantLatency(1.0)
    if LATENCY == "jitter":
        return UniformLatency(0.5, 1.5)
    if LATENCY == "tail":
        return NormalLatency(mean=1.0, stddev=0.4, minimum=0.05)
    raise ValueError(
        f"unknown CHAOS_LATENCY {LATENCY!r} (choose from {LATENCY_PROFILES})"
    )


def run_with_artifact(name, config, extra_checks=None):
    """Run + check a scenario; on failure, dump a reproducible artifact.

    The artifact (scenario name, seed, latency profile, full config and
    the run's trace digest) is everything needed to replay a red matrix
    cell locally.
    """
    run = run_sharded_scenario(config)
    try:
        assert run.all_done(), "chaos run did not reach quiescence"
        run.check_all(strict=False)
        if extra_checks is not None:
            extra_checks(run)
    except BaseException as failure:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        path = os.path.join(ARTIFACT_DIR, f"{name}-s{SEED}-{LATENCY}.txt")
        with open(path, "w") as handle:
            handle.write(f"scenario: {name}\n")
            handle.write(f"seed: {SEED}\nlatency: {LATENCY}\n")
            handle.write(f"config: {config!r}\n")
            handle.write(f"failure: {failure}\n")
            handle.write(f"trace digest: {run.trace.digest()}\n")
            handle.write(f"events: {len(run.trace)}\n")
        raise
    return run


class TestChaosMatrix:
    def test_sequencer_crash_failover_cross_shard(self):
        # B10c shape, re-seeded: shard 0's epoch-0 sequencer dies while
        # cross-shard transfers are in flight.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="bank",
            workload="cross",
            cross_ratio=0.5,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(10.0 + (SEED % 3), "s0.p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=SEED,
        )
        run_with_artifact("crash-failover", config)

    def test_migration_during_server_crash(self):
        # A replica (non-sequencer) dies while keys are being migrated:
        # migration adoption still needs only a majority per group.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(15.0, kick)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=15,
            machine="kv",
            workload="zipf",
            zipf_s=1.4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(18.0, "s1.p2"),
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 100,
        )
        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            assert coordinator.moves_committed + coordinator.moves_aborted == 2

        run_with_artifact("migration-server-crash", config, extra)

    def test_reads_race_migration_under_replica_crash(self):
        # The replica-local read path under chaos: a 90/10 Zipf read mix
        # in both read modes (split by seed parity so every nightly
        # sweep covers both), the two head keys migrating mid-run, and a
        # replica crash in the middle of it.  check_all runs
        # check_read_consistency per shard: zero adopted-mode
        # violations, staleness merely counted.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(16.0, kick)
            run.network.crash_at(20.0 + (SEED % 4), "s0.p2")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=25,
            machine="kv",
            workload="readheavy",
            zipf_s=1.4,
            read_mode="conservative" if SEED % 2 else "optimistic",
            read_ratio=0.9,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 300,
        )

        def extra(run):
            assert run.rebalancers[0].done
            reads = sum(client.reads_adopted for client in run.clients)
            assert reads > 0
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("reads-race-migration", config, extra)

    def test_parallel_execution_races_migration_and_crash(self):
        # The execution engine under chaos: every replica charges
        # exec_cost on 4 conflict-scheduled lanes (so delivered ops are
        # routinely still in lanes when later events land), the two Zipf
        # head keys migrate mid-run, and a replica crashes while its
        # lanes are busy.  check_all covers check_migration_atomicity
        # (single owner, nothing lost, conservation of ownership books)
        # and check_read_consistency (fenced reads stay prefix-anchored)
        # per shard.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(14.0, kick)
            run.network.crash_at(18.0 + (SEED % 5), "s1.p3")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="kv",
            workload="readheavy",
            zipf_s=1.3,
            read_mode="optimistic" if SEED % 2 else "conservative",
            read_ratio=0.5,
            exec_cost=0.8,
            exec_lanes=4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 400,
        )

        def extra(run):
            assert run.rebalancers[0].done
            for server in run.servers:
                if not server.crashed:
                    assert server.engine.idle
                    assert (
                        tuple(server.undo_log.tags) == server.o_delivered.items
                    )
            # The service model was actually in play: ops were executed
            # through lanes at every live replica.
            assert all(
                server.engine.executed > 0
                for server in run.servers
                if not server.crashed
            )
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("parallel-exec-migration", config, extra)

    def test_coordinator_crash_with_recovery(self):
        # The coordinator itself dies mid-move; a recovery coordinator
        # adopts the journal and heals the cluster.
        def arm(run):
            coordinator = attach_rebalancer(run)
            key = run.key_universe[0]
            src = run.routing_table.shard_of(key)
            dst = (src + 1) % run.config.n_shards
            coordinator.schedule(20.0, lambda: coordinator.migrate(key, dst))
            run.sim.schedule_at(
                # Jittered latencies move the adoption instant around;
                # seed-dependent crash times sample the whole window
                # (pre-prepare, stranded, and post-install crashes).
                21.0 + (SEED % 5),
                lambda: run.network.crash(coordinator.client.pid),
            )

            def recover():
                recovery = attach_rebalancer(run, pid="rb2")
                recovery.resume(coordinator.journal)

            run.sim.schedule_at(90.0, recover)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=15,
            machine="bank",
            workload="cross",
            cross_ratio=0.0,
            latency=make_latency(),
            retry_interval=40.0,
            arm=arm,
            grace=200.0,
            horizon=50_000.0,
            seed=SEED + 200,
        )
        def extra(run):
            recovery = run.rebalancers[1]
            assert recovery.done
            # Whatever the crash timing, recovery leaves nothing stranded.
            for record in recovery.journal:
                assert record.terminal, record

        run_with_artifact("coordinator-crash", config, extra)

    def test_split_races_migration_and_crash(self):
        # A hot-key split queued against ordinary key migrations (the
        # coordinator serializes them, so each runs against the traffic
        # and routing churn the other left behind) while a replica dies
        # mid-window.  check_all runs check_fragment_conservation for
        # the bank machine: fragments + escrow must equal the adopted
        # history exactly, whatever the interleaving.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]

            def kick():
                coordinator.split_key(hot, 2)
                n = run.config.n_shards
                for key in run.key_universe[1:3]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(12.0, kick)
            run.network.crash_at(16.0 + (SEED % 4), "s1.p2")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="bank",
            workload="hotkey",
            hot_ratio=0.7,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 500,
        )

        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            assert coordinator.splits_committed + coordinator.splits_aborted == 1
            assert all(record.terminal for record in coordinator.journal)
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("split-races-migration", config, extra)

    def test_split_traffic_on_parallel_lanes_under_crash(self):
        # The full stack at once: a split hot key served by costed
        # 4-lane execution (fragment ops ride separate lanes, borrows
        # ride 2PC between shards) with a replica crashing while its
        # lanes are busy -- the crash/undo half of the conservation
        # story, since Opt-undone fragment ops must never count toward
        # the adopted-history equation.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]
            coordinator.schedule(10.0, lambda: coordinator.split_key(hot, 4))
            run.network.crash_at(20.0 + (SEED % 5), "s0.p3")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="bank",
            workload="hotkey",
            hot_ratio=1.0,
            initial_balance=60,  # slim fragments: shortfalls and borrows
            exec_cost=0.8,
            exec_lanes=4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 600,
        )

        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            for server in run.servers:
                if not server.crashed:
                    assert server.engine.idle
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("split-parallel-exec-crash", config, extra)
