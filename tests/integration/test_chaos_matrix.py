"""Chaos matrix: crash/failover + live migration under seed x latency sweeps.

This module is the workload behind the CI ``chaos-matrix`` job (nightly
``schedule:`` and the ``chaos`` PR label): every cell of the matrix runs
it with a different ``CHAOS_SEED`` and ``CHAOS_LATENCY`` so the same
scenarios are exercised across many timings::

    CHAOS_SEED=3 CHAOS_LATENCY=jitter \
        python -m pytest tests/integration/test_chaos_matrix.py -q

Environment knobs (all optional -- the defaults make this an ordinary
member of the tier-1 suite):

``CHAOS_SEED``
    Base seed for every scenario in the module (default 0).
``CHAOS_LATENCY``
    Latency profile: ``constant`` (the paper's one-hop unit),
    ``jitter`` (uniform 0.5-1.5) or ``tail`` (truncated normal with a
    fat-ish deviation) -- reordering across links is where optimistic
    delivery earns its undo machinery.
``CHAOS_ARTIFACT_DIR``
    Where to drop a failing run's trace digest + scenario description
    (default ``chaos-artifacts``); the CI job uploads this directory so
    a red matrix cell is reproducible from the artifact alone.
``CHAOS_FAULTS``
    Link-fault profile layered on *every* scenario in the module:
    ``off`` (benign channels, the default), ``lossdup`` (drop +
    duplication on the client<->server links, duplication on the
    server<->server links -- the Cnsv-order consensus assumes reliable
    channels, so server-side loss is exercised by the dedicated cells
    below, not blanket-injected under crash-driven phase 2), or
    ``asym`` (a mid-run one-way mute of one replica's outbound links,
    healed in a single release storm).
"""

import os
from dataclasses import replace

import pytest

from repro.faults import FaultSchedule
from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)
from repro.core.messages import SeqOrder
from repro.core.server import OARConfig
from repro.sim.faultplane import LinkFaultPolicy, install_uniform_faults
from repro.sim.latency import ConstantLatency, NormalLatency, UniformLatency
from repro.workload.openloop import FlashCrowdProcess

pytestmark = pytest.mark.integration

SEED = int(os.environ.get("CHAOS_SEED", "0"))
LATENCY = os.environ.get("CHAOS_LATENCY", "constant")
ARTIFACT_DIR = os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts")
FAULTS = os.environ.get("CHAOS_FAULTS", "off")

LATENCY_PROFILES = ("constant", "jitter", "tail")
FAULT_PROFILES = ("off", "lossdup", "asym")

#: Client-side pids the lossdup profile targets (clients and the
#: rebalance coordinators scenarios may attach).
CLIENT_PIDS = ("c1", "c2", "c3", "rb1", "rb2")


def make_latency():
    if LATENCY == "constant":
        return ConstantLatency(1.0)
    if LATENCY == "jitter":
        return UniformLatency(0.5, 1.5)
    if LATENCY == "tail":
        return NormalLatency(mean=1.0, stddev=0.4, minimum=0.05)
    raise ValueError(
        f"unknown CHAOS_LATENCY {LATENCY!r} (choose from {LATENCY_PROFILES})"
    )


def install_client_link_faults(network, drop=0.04, duplicate=0.04, server_dup=0.03):
    """Drop + duplicate on every client<->server link, dup-only between servers.

    The consensus layer (phase 2) assumes reliable server channels, so
    blanket server-side loss under crash-driven failovers could stall a
    round forever -- duplication, however, is provably absorbed
    everywhere (R-multicast mid-dedup, per-src consensus buckets,
    idempotent request/order paths), so it is injected on every link.
    """
    plane = network.ensure_fault_plane()
    lossy = LinkFaultPolicy(drop=drop, duplicate=duplicate)
    for pid in CLIENT_PIDS:
        plane.add_policy(lossy, src=pid)
        plane.add_policy(lossy, dst=pid)
    plane.add_policy(LinkFaultPolicy(duplicate=server_dup))
    return plane


def with_chaos_faults(config):
    """Layer the ``CHAOS_FAULTS`` profile onto one scenario config."""
    if FAULTS == "off":
        return config
    if FAULTS == "lossdup":
        base = config.faults

        def faults(network, base=base):
            if base is not None:
                base(network)
            install_client_link_faults(network)

        return config.with_changes(
            faults=faults,
            oar=replace(config.oar, sync_interval=15.0),
        )
    if FAULTS == "asym":
        schedule = config.fault_schedule or FaultSchedule()
        # One replica's outbound links go mute mid-run (heartbeats,
        # replies, relays -- everything it says disappears while it
        # still hears the world), then a single heal storm releases the
        # whole backlog at once.
        schedule.oneway(25.0, [("s0.p2", "*")]).heal_oneway(60.0)
        return config.with_changes(fault_schedule=schedule)
    raise ValueError(
        f"unknown CHAOS_FAULTS {FAULTS!r} (choose from {FAULT_PROFILES})"
    )


def run_with_artifact(name, config, extra_checks=None):
    """Run + check a scenario; on failure, dump a reproducible artifact.

    The artifact (scenario name, seed, latency profile, full config and
    the run's trace digest) is everything needed to replay a red matrix
    cell locally.
    """
    config = with_chaos_faults(config)
    run = run_sharded_scenario(config)
    try:
        assert run.all_done(), "chaos run did not reach quiescence"
        run.check_all(strict=False)
        if extra_checks is not None:
            extra_checks(run)
    except BaseException as failure:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        path = os.path.join(
            ARTIFACT_DIR, f"{name}-s{SEED}-{LATENCY}-{FAULTS}.txt"
        )
        with open(path, "w") as handle:
            handle.write(f"scenario: {name}\n")
            handle.write(f"seed: {SEED}\nlatency: {LATENCY}\nfaults: {FAULTS}\n")
            handle.write(f"config: {config!r}\n")
            handle.write(f"failure: {failure}\n")
            handle.write(f"trace digest: {run.trace.digest()}\n")
            handle.write(f"events: {len(run.trace)}\n")
        raise
    return run


class TestChaosMatrix:
    def test_sequencer_crash_failover_cross_shard(self):
        # B10c shape, re-seeded: shard 0's epoch-0 sequencer dies while
        # cross-shard transfers are in flight.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="bank",
            workload="cross",
            cross_ratio=0.5,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(10.0 + (SEED % 3), "s0.p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=SEED,
        )
        run_with_artifact("crash-failover", config)

    def test_migration_during_server_crash(self):
        # A replica (non-sequencer) dies while keys are being migrated:
        # migration adoption still needs only a majority per group.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(15.0, kick)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=15,
            machine="kv",
            workload="zipf",
            zipf_s=1.4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(18.0, "s1.p2"),
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 100,
        )
        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            assert coordinator.moves_committed + coordinator.moves_aborted == 2

        run_with_artifact("migration-server-crash", config, extra)

    def test_reads_race_migration_under_replica_crash(self):
        # The replica-local read path under chaos: a 90/10 Zipf read mix
        # in both read modes (split by seed parity so every nightly
        # sweep covers both), the two head keys migrating mid-run, and a
        # replica crash in the middle of it.  check_all runs
        # check_read_consistency per shard: zero adopted-mode
        # violations, staleness merely counted.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(16.0, kick)
            run.network.crash_at(20.0 + (SEED % 4), "s0.p2")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=25,
            machine="kv",
            workload="readheavy",
            zipf_s=1.4,
            read_mode="conservative" if SEED % 2 else "optimistic",
            read_ratio=0.9,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 300,
        )

        def extra(run):
            assert run.rebalancers[0].done
            reads = sum(client.reads_adopted for client in run.clients)
            assert reads > 0
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("reads-race-migration", config, extra)

    def test_parallel_execution_races_migration_and_crash(self):
        # The execution engine under chaos: every replica charges
        # exec_cost on 4 conflict-scheduled lanes (so delivered ops are
        # routinely still in lanes when later events land), the two Zipf
        # head keys migrate mid-run, and a replica crashes while its
        # lanes are busy.  check_all covers check_migration_atomicity
        # (single owner, nothing lost, conservation of ownership books)
        # and check_read_consistency (fenced reads stay prefix-anchored)
        # per shard.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(14.0, kick)
            run.network.crash_at(18.0 + (SEED % 5), "s1.p3")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="kv",
            workload="readheavy",
            zipf_s=1.3,
            read_mode="optimistic" if SEED % 2 else "conservative",
            read_ratio=0.5,
            exec_cost=0.8,
            exec_lanes=4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 400,
        )

        def extra(run):
            assert run.rebalancers[0].done
            for server in run.servers:
                if not server.crashed:
                    assert server.engine.idle
                    assert (
                        tuple(server.undo_log.tags) == server.o_delivered.items
                    )
            # The service model was actually in play: ops were executed
            # through lanes at every live replica.
            assert all(
                server.engine.executed > 0
                for server in run.servers
                if not server.crashed
            )
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("parallel-exec-migration", config, extra)

    def test_coordinator_crash_with_recovery(self):
        # The coordinator itself dies mid-move; a recovery coordinator
        # adopts the journal and heals the cluster.
        def arm(run):
            coordinator = attach_rebalancer(run)
            key = run.key_universe[0]
            src = run.routing_table.shard_of(key)
            dst = (src + 1) % run.config.n_shards
            coordinator.schedule(20.0, lambda: coordinator.migrate(key, dst))
            run.sim.schedule_at(
                # Jittered latencies move the adoption instant around;
                # seed-dependent crash times sample the whole window
                # (pre-prepare, stranded, and post-install crashes).
                21.0 + (SEED % 5),
                lambda: run.network.crash(coordinator.client.pid),
            )

            def recover():
                recovery = attach_rebalancer(run, pid="rb2")
                recovery.resume(coordinator.journal)

            run.sim.schedule_at(90.0, recover)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=15,
            machine="bank",
            workload="cross",
            cross_ratio=0.0,
            latency=make_latency(),
            retry_interval=40.0,
            arm=arm,
            grace=200.0,
            horizon=50_000.0,
            seed=SEED + 200,
        )
        def extra(run):
            recovery = run.rebalancers[1]
            assert recovery.done
            # Whatever the crash timing, recovery leaves nothing stranded.
            for record in recovery.journal:
                assert record.terminal, record

        run_with_artifact("coordinator-crash", config, extra)

    def test_split_races_migration_and_crash(self):
        # A hot-key split queued against ordinary key migrations (the
        # coordinator serializes them, so each runs against the traffic
        # and routing churn the other left behind) while a replica dies
        # mid-window.  check_all runs check_fragment_conservation for
        # the bank machine: fragments + escrow must equal the adopted
        # history exactly, whatever the interleaving.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]

            def kick():
                coordinator.split_key(hot, 2)
                n = run.config.n_shards
                for key in run.key_universe[1:3]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(12.0, kick)
            run.network.crash_at(16.0 + (SEED % 4), "s1.p2")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="bank",
            workload="hotkey",
            hot_ratio=0.7,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 500,
        )

        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            assert coordinator.splits_committed + coordinator.splits_aborted == 1
            assert all(record.terminal for record in coordinator.journal)
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("split-races-migration", config, extra)

    def test_split_traffic_on_parallel_lanes_under_crash(self):
        # The full stack at once: a split hot key served by costed
        # 4-lane execution (fragment ops ride separate lanes, borrows
        # ride 2PC between shards) with a replica crashing while its
        # lanes are busy -- the crash/undo half of the conservation
        # story, since Opt-undone fragment ops must never count toward
        # the adopted-history equation.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]
            coordinator.schedule(10.0, lambda: coordinator.split_key(hot, 4))
            run.network.crash_at(20.0 + (SEED % 5), "s0.p3")

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=20,
            machine="bank",
            workload="hotkey",
            hot_ratio=1.0,
            initial_balance=60,  # slim fragments: shortfalls and borrows
            exec_cost=0.8,
            exec_lanes=4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 600,
        )

        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            for server in run.servers:
                if not server.crashed:
                    assert server.engine.idle
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("split-parallel-exec-crash", config, extra)

    def test_flash_crowd_sequencer_crash_with_shedding(self):
        # The overload cell: a flash crowd drives both shards past their
        # admission bound (ISSUE 8) while shard 0's sequencer dies at
        # the top of the surge.  Failover must not turn shedding into
        # lost requests or double decisions: every offered arrival
        # resolves into exactly one of admitted/shed/throttled
        # (check_admission_accounting, inside the full bundle), and the
        # run reaches quiescence despite the crash landing mid-flood.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=120,
            machine="bank",
            driver="session",
            open_rate=3.0,
            arrival=FlashCrowdProcess(
                base_rate=1.0, peak_rate=8.0, at=10.0,
                ramp=10.0, hold=120.0, decay=20.0,
            ),
            n_sessions=40,
            oar=OARConfig(order_cost=0.5),
            admission_limit=6,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=FaultSchedule().crash(25.0 + (SEED % 3), "s0.p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 1300,
        )

        def extra(run):
            total_shed = sum(s.shed for ss in run.shards for s in ss)
            assert total_shed > 0, "the flash crowd should force sheds"
            # The crash forced a failover on shard 0.
            assert any(
                s.epoch > 0 for s in run.shards[0] if not s.crashed
            ), "shard 0 never rotated off the crashed sequencer"
            for driver in run.drivers:
                assert driver.offered == (
                    driver.admitted + driver.shed + driver.throttled
                )

        run_with_artifact("flash-crowd-shedding-crash", config, extra)


class TestChaosLinkFaults:
    """Link faults composed with the crash/migration/split chaos cells.

    The cells above assume reliable channels unless ``CHAOS_FAULTS``
    says otherwise; these cells bake specific link-fault shapes into the
    scenario itself, so every matrix row (including ``off``) exercises
    loss, duplication, corruption, reordering and one-way partitions
    *combined with* the crash-driven machinery.
    """

    def test_link_loss_during_sequencer_crash_failover(self):
        # Lossy client links while shard 0's sequencer dies: phase 2
        # consensus runs over the (reliable, but duplicating) server
        # links, retransmission + anti-entropy repair the client side.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=10,
            machine="kv",
            workload="uniform",
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            oar=OARConfig(sync_interval=15.0),
            faults=install_client_link_faults,
            fault_schedule=FaultSchedule().crash(12.0 + (SEED % 3), "s0.p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 700,
        )

        def extra(run):
            plane = run.network.fault_plane
            assert plane.dropped + plane.duplicated > 0
            for client in run.clients:
                assert client.outstanding == 0

        run_with_artifact("link-loss-sequencer-crash", config, extra)

    def test_asym_partition_heal_storm_during_migration(self):
        # One replica's outbound links go mute while keys migrate: its
        # held replies/relays/heartbeats all land at once in the heal
        # storm, and migration atomicity must survive the burst.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(12.0, kick)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="kv",
            workload="zipf",
            zipf_s=1.4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            fault_schedule=(
                FaultSchedule()
                .oneway(20.0, [("s1.p3", "*")])
                .heal_oneway(55.0)
            ),
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 800,
        )

        def extra(run):
            assert run.rebalancers[0].done
            plane = run.network.fault_plane
            assert plane.held > 0
            assert plane.pending_held == 0  # the storm released everything

        run_with_artifact("asym-heal-storm-migration", config, extra)

    def test_duplicated_control_plane_during_split_and_crash(self):
        # Every migration/split control message is delivered twice while
        # a replica dies mid-split: idempotent install/open/close paths
        # must absorb the duplicates even across the failover.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)
            hot = run.key_universe[0]

            def kick():
                coordinator.split_key(hot, 2)
                src = run.routing_table.shard_of(run.key_universe[1])
                coordinator.migrate(
                    run.key_universe[1], (src + 1) % run.config.n_shards
                )

            coordinator.schedule(12.0, kick)
            run.network.crash_at(18.0 + (SEED % 4), "s1.p2")

        def faults(net):
            for kind in ("mig_install", "split_open", "split_close"):
                install_uniform_faults(net, duplicate=1.0, kind=kind)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=15,
            machine="bank",
            workload="hotkey",
            hot_ratio=0.7,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            faults=faults,
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 900,
        )

        def extra(run):
            coordinator = run.rebalancers[0]
            assert coordinator.done
            assert all(record.terminal for record in coordinator.journal)
            assert run.network.fault_plane.duplicated > 0

        run_with_artifact("dup-control-plane-split-crash", config, extra)

    def test_corruption_under_parallel_lanes_and_migration(self):
        # Random payload corruption on every link (detected-and-dropped
        # at the checksum gate, i.e. uniform low-grade loss) while keys
        # migrate and every replica executes on costed lanes.
        def arm(run):
            coordinator = attach_rebalancer(run, retry_delay=6.0)

            def kick():
                n = run.config.n_shards
                for key in run.key_universe[:2]:
                    src = run.routing_table.shard_of(key)
                    coordinator.migrate(key, (src + 1) % n)

            coordinator.schedule(14.0, kick)

        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="kv",
            workload="zipf",
            zipf_s=1.3,
            exec_cost=0.8,
            exec_lanes=4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            oar=OARConfig(sync_interval=15.0),
            faults=lambda net: install_uniform_faults(net, corrupt=0.03),
            arm=arm,
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 1000,
        )

        def extra(run):
            assert run.rebalancers[0].done
            plane = run.network.fault_plane
            assert plane.corrupted > 0
            # check_fault_plane_accounting (inside check_all) proves
            # corrupt_dropped == corrupted; nothing corrupted applied.

        run_with_artifact("corruption-parallel-lanes", config, extra)

    def test_jitter_reorder_during_crash_failover(self):
        # Per-message jitter breaks the FIFO floor on every link (real
        # reordering, not just variable latency) while the sequencer
        # dies: slot-contiguous order acceptance buffers the gaps.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="bank",
            workload="cross",
            cross_ratio=0.4,
            latency=make_latency(),
            fd_interval=1.0,
            fd_timeout=8.0,
            retry_interval=30.0,
            faults=lambda net: install_uniform_faults(
                net, jitter=0.3, jitter_span=4.0
            ),
            fault_schedule=FaultSchedule().crash(14.0 + (SEED % 3), "s0.p1"),
            grace=300.0,
            horizon=50_000.0,
            seed=SEED + 1100,
        )

        def extra(run):
            assert run.network.fault_plane.jittered > 0

        run_with_artifact("jitter-sequencer-crash", config, extra)

    def test_equivocation_alarm_fires_under_every_latency_profile(self):
        # The Byzantine cell: a scripted equivocating sequencer tells
        # one replica a different order.  The clients' order
        # certificates must raise the alarm under every latency profile
        # of the matrix -- detection may not depend on benign timing.
        from repro.core.client import OARClient
        from repro.core.server import OARServer
        from repro.failure.detector import ScriptedFailureDetector
        from repro.sim.loop import Simulator
        from repro.sim.network import SimNetwork
        from repro.statemachine import CounterMachine

        sim = Simulator(seed=SEED + 1200)
        network = SimNetwork(sim, latency=make_latency())
        group = ["p1", "p2", "p3"]
        for pid in group:
            network.add_process(
                OARServer(
                    pid, group, CounterMachine(), ScriptedFailureDetector(),
                    OARConfig(batch_interval=5.0),
                )
            )
        clients = [OARClient(f"c{i + 1}", group) for i in range(2)]
        for client in clients:
            network.add_process(client)
        network.start_all()
        plane = network.ensure_fault_plane()
        swapped = []

        def equivocate(src, dst, payload):
            if swapped or src != "p1" or dst != "p3":
                return None
            if isinstance(payload, SeqOrder) and len(payload.rids) >= 2:
                swapped.append(True)
                rids = list(payload.rids)
                rids[0], rids[1] = rids[1], rids[0]
                return SeqOrder(payload.epoch, tuple(rids), payload.start)
            return None

        plane.add_rewrite(equivocate)
        sim.schedule_at(0.0, lambda: clients[0].submit(("incr",)))
        sim.schedule_at(0.0, lambda: clients[1].submit(("incr",)))
        sim.run(until=200.0, max_events=200_000)
        assert swapped, "the equivocating rewrite never fired"
        alarms = sum(client.equivocations_detected for client in clients)
        assert alarms > 0, "divergent order certificates went undetected"
        assert network.trace.events(kind="equivocation_alarm")
