"""Integration: Propositions 1-7 over seeded randomized fault schedules.

Each seed produces a different crash/suspicion/partition schedule; every
run must satisfy the full checker bundle (the machine-checkable forms of
the paper's propositions).  This is the workhorse correctness soak; the
hypothesis fuzzer in tests/property goes further.
"""

import random

import pytest

from repro.analysis import checkers
from repro.faults import FaultSchedule, random_fault_schedule
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.integration



def run_with_schedule(seed: int, n_servers: int = 3, **overrides):
    rng = random.Random(seed)
    pids = [f"p{i + 1}" for i in range(n_servers)]
    majority = n_servers // 2 + 1
    schedule = random_fault_schedule(
        rng,
        pids,
        horizon=60.0,
        max_crashes=min(1, n_servers - majority),
        suspicion_rate=0.4,
    )
    config = ScenarioConfig(
        n_servers=n_servers,
        n_clients=2,
        requests_per_client=8,
        fd_interval=2.0,
        fd_timeout=6.0,
        fault_schedule=schedule,
        grace=250.0,
        seed=seed,
        **overrides,
    )
    return run_scenario(config)


class TestRandomizedSchedules:
    @pytest.mark.parametrize("seed", range(12))
    def test_three_servers(self, seed):
        run = run_with_schedule(seed)
        assert run.all_done(), f"run {seed} did not quiesce"
        run.check_all(strict=False)

    @pytest.mark.parametrize("seed", range(12, 18))
    def test_five_servers(self, seed):
        run = run_with_schedule(seed, n_servers=5)
        assert run.all_done(), f"run {seed} did not quiesce"
        run.check_all(strict=False)

    @pytest.mark.parametrize("seed", range(18, 22))
    def test_bank_machine_under_faults(self, seed):
        run = run_with_schedule(seed, machine="bank")
        assert run.all_done()
        run.check_all(strict=False)
        # Bank invariant: transfers conserve the total balance; deposits
        # and withdrawals applied identically everywhere (convergence is
        # checked by check_all; here we pin the invariant run-wide).
        totals = {s.machine.total_balance() for s in run.correct_servers}
        assert len(totals) == 1


class TestProposition1:
    """Validity of request handling: only client requests are delivered."""

    def test_every_delivery_matches_a_submission(self):
        run = run_with_schedule(seed=101)
        submitted = set(run.submitted_rids())
        for kind in ("opt_deliver", "a_deliver"):
            for event in run.trace.events(kind=kind):
                assert event["rid"] in submitted


class TestProposition2And3:
    """At-most-once request handling."""

    def test_no_duplicate_settlement(self):
        run = run_with_schedule(seed=102)
        checkers.check_at_most_once(run.trace, run.servers)

    def test_message_delivered_in_two_epochs_was_undone_in_first(self):
        # Prop 3: re-delivery in a later epoch requires an undo earlier.
        run = run_with_schedule(seed=103)
        seen = {}
        undone = {
            (e.pid, e["rid"], e["epoch"])
            for e in run.trace.events(kind="opt_undeliver")
        }
        for event in run.trace.events(kind="opt_deliver"):
            key = (event.pid, event["rid"])
            if key in seen:
                assert (event.pid, event["rid"], seen[key]) in undone
            seen[key] = event["epoch"]


class TestProposition4:
    """At-least-once: every submitted request eventually settles."""

    def test_quiescent_run_delivers_everything(self):
        run = run_with_schedule(seed=104)
        assert run.all_done()
        checkers.check_at_least_once(
            run.trace, run.correct_servers, run.submitted_rids()
        )


class TestProposition5:
    """Total order of replies across servers."""

    def test_positions_agree_for_settled_requests(self):
        run = run_with_schedule(seed=105)
        positions = {}
        crashed = {e.pid for e in run.trace.events(kind="crash")}
        undone = {
            (e.pid, e["rid"], e["epoch"])
            for e in run.trace.events(kind="opt_undeliver")
        }
        for kind in ("opt_deliver", "a_deliver"):
            for event in run.trace.events(kind=kind):
                if event.pid in crashed:
                    continue
                if (event.pid, event["rid"], event["epoch"]) in undone:
                    continue
                positions.setdefault(event["rid"], set()).add(event["position"])
        for rid, position_set in positions.items():
            assert len(position_set) == 1, f"{rid} settled at {position_set}"


class TestProposition7:
    """External consistency of adopted replies."""

    @pytest.mark.parametrize("seed", [106, 107, 108])
    def test_adoptions_consistent(self, seed):
        run = run_with_schedule(seed=seed)
        checkers.check_external_consistency(run.trace, strict=False)
