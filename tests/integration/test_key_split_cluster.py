"""Integration: hot-key splitting end to end (repro.sharding + client).

A split key must keep serving its full operation mix -- commutative
deposits round-robined over fragments, budget-limited withdrawals that
borrow between fragments on a shortfall, whole-balance reads that
scatter-gather and merge -- while the fragment-conservation invariant
(sum of fragments + in-flight escrow == adopted history) holds exactly,
traffic or not.  These tests drive the sharded bank cluster through
split, borrow, merge-read, unsplit and auto-split, and finish with a
negative test that plants a corrupted fragment balance and demands the
checker catch it.
"""

import pytest

from repro.analysis import checkers
from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)

pytestmark = pytest.mark.integration


def hotkey_config(**overrides):
    """A small saturating single-hot-key bank cluster."""
    base = dict(
        n_shards=2,
        n_servers=3,
        n_clients=2,
        requests_per_client=25,
        machine="bank",
        workload="hotkey",
        hot_ratio=1.0,
        accounts_per_shard=3,
        seed=7,
        grace=200.0,
        horizon=50_000.0,
    )
    base.update(overrides)
    return ShardedScenarioConfig(**base)


def _arm_split(state, frags=2, unsplit_at=None):
    """An ``arm`` hook that splits the hot key at t=0 (mid-traffic)."""

    def arm(run):
        coordinator = attach_rebalancer(run)
        hot = run.key_universe[0]
        coordinator.schedule(0.0, lambda: coordinator.split_key(hot, frags))
        if unsplit_at is not None:
            coordinator.schedule(unsplit_at, lambda: coordinator.unsplit_key(hot))
        state.update(coordinator=coordinator, hot=hot)

    return arm


class TestSplitUnderTraffic:
    def test_split_serves_the_full_mix_and_conserves(self):
        state = {}
        run = run_sharded_scenario(hotkey_config(arm=_arm_split(state, frags=2)))
        assert run.all_done()
        coordinator, hot = state["coordinator"], state["hot"]
        assert coordinator.done and coordinator.splits_committed == 1
        # The placement is live: each fragment is owned by exactly its
        # planned shard's replicas, the logical key by nobody.
        placements = run.routing_table.fragments_of(hot)
        assert placements is not None and len(placements) == 2
        shards = {shard for _frag, shard in placements}
        assert shards == {0, 1}  # the split actually spread the heat
        for frag, shard in placements:
            for server in run.correct_servers(shard):
                assert server.machine.owns(frag)
        for shard in range(run.config.n_shards):
            for server in run.correct_servers(shard):
                assert not server.machine.owns(hot)
        # Clients actually rewrote ops onto fragments and scatter-read.
        assert len(list(run.trace.events(kind="split_rewrite"))) > 0
        assert len(list(run.trace.events(kind="split_read"))) > 0
        # check_all includes check_fragment_conservation (bank machine).
        run.check_all()

    def test_shortfall_borrows_between_fragments(self):
        # A small balance split 4 ways leaves each fragment with ~7
        # while the generator withdraws up to 80: shortfalls are
        # guaranteed, and every one must resolve by borrowing (an
        # ordinary totally-ordered transfer) rather than failing.
        state = {}
        run = run_sharded_scenario(
            hotkey_config(
                initial_balance=30,
                requests_per_client=30,
                arm=_arm_split(state, frags=4),
            )
        )
        assert run.all_done()
        borrows = list(run.trace.events(kind="split_borrow"))
        assert borrows, "withdrawals against slim fragments must borrow"
        run.check_all()

    def test_unsplit_merges_the_key_back(self):
        state = {}
        run = run_sharded_scenario(
            hotkey_config(arm=_arm_split(state, frags=2, unsplit_at=80.0))
        )
        assert run.all_done()
        coordinator, hot = state["coordinator"], state["hot"]
        assert coordinator.splits_committed == 1
        assert coordinator.unsplits_committed == 1
        # The table routes the logical key again; no fragment survives.
        assert run.routing_table.fragments_of(hot) is None
        home = run.routing_table.shard_of(hot)
        for server in run.correct_servers(home):
            assert server.machine.owns(hot)
        owned_anywhere = set()
        for shard in range(run.config.n_shards):
            for server in run.correct_servers(shard):
                owned_anywhere |= set(server.machine.owned_keys())
        assert not {key for key in owned_anywhere if "#f" in str(key)}
        run.check_all()

    def test_merged_balance_equals_adopted_history(self):
        # Quiescent, merged: the logical balance must equal the initial
        # balance plus the net of every adopted deposit/withdrawal --
        # nothing lost to the split/borrow/merge machinery.
        state = {}
        run = run_sharded_scenario(
            hotkey_config(arm=_arm_split(state, frags=2, unsplit_at=80.0))
        )
        assert run.all_done()
        hot = state["hot"]
        # The submit trace records the op as actually submitted -- the
        # *fragment* rewrite while the key was split -- so classify by
        # fragment family, not by the raw key.
        op_of = {
            event["rid"]: tuple(event["op"])
            for event in run.trace.events(kind="submit")
        }

        def family(key):
            text = str(key)
            sep = text.rfind("#f")
            if sep > 0 and text[sep + 2:].isdigit():
                return text[:sep]
            return key

        delta = 0
        for rid, record in run.adopted().items():
            result = record.value
            op = op_of.get(rid)
            if op is None or not getattr(result, "ok", False):
                continue
            if op[0] == "deposit" and family(op[1]) == hot:
                delta += op[2]
            elif op[0] == "withdraw" and family(op[1]) == hot:
                delta -= op[2]
        home = run.routing_table.shard_of(hot)
        for server in run.correct_servers(home):
            assert server.machine.fragment_value(hot) == (
                run.config.initial_balance + delta
            )


class TestAutoSplitLive:
    def test_sustained_hot_key_auto_splits(self):
        # No scheduled kick: the coordinator's policy tick must notice
        # the sustained one-key imbalance, find plan_moves defeated (the
        # hot key outweighs the hot/cold gap) and split it in-place.
        state = {}

        def arm(run):
            state["coordinator"] = attach_rebalancer(
                run,
                auto=True,
                auto_interval=10.0,
                auto_ratio=3.0,
                auto_sustain=2,
                auto_min_load=5.0,
                auto_split_n=2,
            )

        run = run_sharded_scenario(
            hotkey_config(requests_per_client=40, arm=arm)
        )
        assert run.all_done()
        coordinator = state["coordinator"]
        assert coordinator.auto_splits >= 1
        assert coordinator.splits_committed >= 1
        assert list(run.trace.events(kind="split_auto"))
        hot = run.key_universe[0]
        assert run.routing_table.fragments_of(hot) is not None
        run.check_all()


class TestConservationCheckerTeeth:
    def test_corrupted_fragment_balance_is_caught(self):
        # The positive runs above prove the checker passes on healthy
        # clusters; this proves it has teeth.  Plant a silent +7 on one
        # fragment's balance at every correct replica of its shard (a
        # consistent corruption, so fingerprint comparison alone would
        # never see it) and the adopted-history equation must break.
        state = {}
        run = run_sharded_scenario(hotkey_config(arm=_arm_split(state, frags=2)))
        assert run.all_done()
        run.check_all()  # healthy first
        frag, shard = run.routing_table.fragments_of(state["hot"])[0]
        for server in run.correct_servers(shard):
            server.machine._accounts[frag] += 7
        with pytest.raises(checkers.CheckFailure, match="fragment conservation"):
            checkers.check_fragment_conservation(
                run.trace,
                run.shards,
                run.routing_table,
                initial_values={
                    account: run.config.initial_balance
                    for account in run.key_universe
                },
            )
