"""Integration: sharded multi-group OAR (repro.sharding).

Per-shard the paper's guarantees must hold unchanged; across shards the
client-coordinated escrow commit must keep multi-key operations atomic --
including under crash-failover of a shard's sequencer.
"""

import pytest

from repro.core.client import OARClient, ShardedOARClient
from repro.core.server import OARConfig, OARServer
from repro.faults import FaultSchedule
from repro.harness import ShardedScenarioConfig, run_sharded_scenario
from repro.failure.detector import HeartbeatFailureDetector
from repro.sharding import HashShardRouter
from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork
from repro.statemachine import KVStoreMachine
from repro.workload.drivers import ClosedLoopDriver

pytestmark = pytest.mark.integration


class TestFailureFree:
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_kv_uniform_all_properties(self, n_shards):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=n_shards,
                n_servers=3,
                n_clients=2,
                requests_per_client=12,
                machine="kv",
                workload="uniform",
                seed=n_shards,
            )
        )
        assert run.all_done()
        run.check_all()
        assert len(run.adopted()) == 24
        # Work actually spread: more than one shard delivered requests.
        active = [shard for shard in range(n_shards) if run.routed_to(shard)]
        assert len(active) > 1

    def test_zipf_workload_skews_but_stays_correct(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=4,
                n_clients=2,
                requests_per_client=15,
                machine="kv",
                workload="zipf",
                zipf_s=1.5,
                seed=7,
            )
        )
        assert run.all_done()
        run.check_all()
        loads = [len(run.routed_to(shard)) for shard in range(4)]
        # The hot key's shard carries strictly more than an even split.
        assert max(loads) > sum(loads) / 4

    def test_range_router_cluster(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=3,
                n_clients=2,
                requests_per_client=10,
                machine="kv",
                router="range",
                seed=11,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_epochs_are_independent_per_shard(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=10,
                machine="kv",
                seed=5,
            )
        )
        # No suspicion, no phase 2 anywhere: every shard stays in epoch 0
        # with its own sequencer.
        for shard in run.shards:
            for server in shard:
                assert server.epoch == 0
        sequencers = {shard[0].current_sequencer for shard in run.shards}
        assert len(sequencers) == 2


class TestCrossShard:
    def test_transfers_commit_atomically(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=15,
                machine="bank",
                workload="cross",
                cross_ratio=0.5,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all()
        assert sum(client.cross_shard_started for client in run.clients) > 0
        assert sum(client.cross_shard_committed for client in run.clients) > 0

    def test_overdraft_transfer_aborts_cleanly(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=1,
                requests_per_client=1,
                machine="bank",
                workload="cross",
                initial_balance=100,
                seed=4,
            )
        )
        assert run.all_done()
        client = run.clients[0]
        accounts = run.key_universe
        # Find two accounts on different shards and overdraw the source.
        src = accounts[0]
        src_shard = run.router.shard_of(src)
        dst = next(a for a in accounts if run.router.shard_of(a) != src_shard)
        txid = client.submit(("transfer", src, dst, 10_000))
        run.sim.run(until=run.sim.now + 200.0)
        adopted = client.adopted[txid]
        assert not adopted.value.ok
        assert "overdraft" in adopted.value.error
        assert client.cross_shard_aborted == 1
        run.check_all()  # conservation: the aborted debit returned home

    def test_keyless_op_routes_to_fallback_shard(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=3,
                n_clients=1,
                requests_per_client=1,
                machine="bank",
                seed=6,
            )
        )
        client = run.clients[0]
        assert client.shards_of(("total",)) == (0,)
        rid = client.submit(("total",))
        run.sim.run(until=run.sim.now + 50.0)
        assert client.routed[rid] == 0
        assert client.adopted[rid].value.ok


class TestCrashFailover:
    def test_sequencer_crash_preserves_cross_shard_atomicity(self):
        # Crash shard 0's epoch-0 sequencer mid-run: that shard fails over
        # (suspicion -> PhaseII -> Cnsv-order -> rotate) while shard 1
        # keeps serving; in-flight transactions must still commit or
        # abort on every participant.
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_servers=3,
                n_clients=2,
                requests_per_client=12,
                machine="bank",
                workload="cross",
                cross_ratio=0.5,
                fd_interval=1.0,
                fd_timeout=8.0,
                retry_interval=30.0,
                fault_schedule=FaultSchedule().crash(10.0, "s0.p1"),
                grace=300.0,
                seed=3,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)
        # Shard 0 actually failed over; shard 1 was undisturbed.
        assert all(server.epoch >= 1 for server in run.correct_servers(0))
        assert all(server.epoch == 0 for server in run.correct_servers(1))

    @pytest.mark.parametrize("seed", range(3))
    def test_crash_sweep_conserves_money(self, seed):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_servers=3,
                n_clients=2,
                requests_per_client=8,
                machine="bank",
                workload="cross",
                cross_ratio=0.6,
                fd_interval=1.0,
                fd_timeout=6.0,
                retry_interval=25.0,
                fault_schedule=FaultSchedule().crash(8.0 + 3 * seed, "s1.p1"),
                grace=300.0,
                seed=seed,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)


class TestOrderCostPipeline:
    """The sequencer service model (OARConfig.order_cost) under epoch churn.

    order_cost was introduced for the sharding benchmarks; these runs
    pin down its interaction with phase 2: a batch frozen for service
    survives epoch rotation (the stale batch is dropped and its requests
    re-ordered by the new epoch's sequencer, losing nothing).
    """

    def test_costed_pipeline_with_gc_rotation(self):
        from repro.harness import ScenarioConfig, run_scenario

        # gc_after_requests forces periodic phase 2 while batches are in
        # service, exercising the stale-batch drop in _emit_costed_order.
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=4,
                requests_per_client=15,
                driver="open",
                open_rate=1.0,
                oar=OARConfig(order_cost=0.5, gc_after_requests=4),
                grace=200.0,
                horizon=20_000.0,
                seed=5,
            )
        )
        assert run.all_done()
        run.check_all()
        assert run.servers[0].epoch >= 2  # rotation actually happened

    def test_costed_pipeline_survives_sequencer_crash(self):
        from repro.harness import ScenarioConfig, run_scenario

        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=4,
                requests_per_client=10,
                driver="open",
                open_rate=1.0,
                fd_interval=1.0,
                fd_timeout=6.0,
                oar=OARConfig(order_cost=0.5),
                fault_schedule=FaultSchedule().crash(8.0, "p1"),
                grace=300.0,
                horizon=20_000.0,
                seed=1,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)
        assert all(server.epoch >= 1 for server in run.correct_servers)

    def test_non_quiescent_run_checks_safety_only(self):
        # Cut a cross-shard run off mid-flight: check_all must not flag
        # an undecided transaction as an atomicity violation.
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=2,
                n_clients=2,
                requests_per_client=20,
                machine="bank",
                workload="cross",
                cross_ratio=0.8,
                horizon=6.0,
                grace=0.0,
                seed=2,
            )
        )
        assert not run.all_done()
        run.check_all(strict=False, at_least_once=False)


class TestDegenerateSingleShard:
    """A 1-shard cluster must behave exactly like the unsharded protocol."""

    def _run(self, client_factory, ops):
        sim = Simulator(seed=9)
        network = SimNetwork(sim, latency=ConstantLatency(1.0))
        group = ["p1", "p2", "p3"]

        def fd_factory(host):
            return HeartbeatFailureDetector(
                host, monitored=group, interval=5.0, timeout=15.0
            )

        servers = []
        for pid in group:
            server = OARServer(pid, group, KVStoreMachine(), fd_factory, OARConfig())
            servers.append(server)
            network.add_process(server)
        client = client_factory(group)
        network.add_process(client)
        network.start_all()
        driver = ClosedLoopDriver(sim, client, iter(ops), total=len(ops))
        sim.run_until(lambda: driver.done, max_events=500_000)
        sim.run(until=sim.now + 50.0)
        assert driver.done
        return client, servers

    def test_identical_to_unsharded_baseline(self):
        ops = [
            ("set", "k1", "v1"),
            ("set", "k2", "v2"),
            ("get", "k1"),
            ("cas", "k2", "v2", "v3"),
            ("delete", "k1"),
            ("get", "k2"),
        ]
        plain_client, plain_servers = self._run(
            lambda group: OARClient("c1", group), ops
        )
        sharded_client, sharded_servers = self._run(
            lambda group: ShardedOARClient(
                "c1",
                [group],
                HashShardRouter(1),
                key_extractor=KVStoreMachine.keys_of,
                tx_planner=KVStoreMachine.tx_branches,
            ),
            ops,
        )
        assert sharded_client.cross_shard_started == 0
        plain = {
            rid: (a.value, a.position, a.epoch, a.conservative)
            for rid, a in plain_client.adopted.items()
        }
        sharded = {
            rid: (a.value, a.position, a.epoch, a.conservative)
            for rid, a in sharded_client.adopted.items()
        }
        assert plain == sharded
        for plain_server, sharded_server in zip(plain_servers, sharded_servers):
            assert (
                plain_server.machine.fingerprint()
                == sharded_server.machine.fingerprint()
            )

    def test_single_shard_scenario_checks(self):
        run = run_sharded_scenario(
            ShardedScenarioConfig(
                n_shards=1,
                n_clients=2,
                requests_per_client=10,
                machine="bank",
                workload="cross",  # all transfers become single-shard ops
                seed=12,
            )
        )
        assert run.all_done()
        run.check_all()
        assert sum(client.cross_shard_started for client in run.clients) == 0
