"""Integration: larger deployments and heavier contention.

The paper's scenarios use 3-4 servers; these tests push the group and
client counts up to confirm nothing in the implementation is secretly
O(small-n) or single-client-shaped.
"""

import pytest

from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.integration



class TestLargeGroups:
    def test_nine_replicas_failure_free(self):
        run = run_scenario(
            ScenarioConfig(
                n_servers=9,
                n_clients=3,
                requests_per_client=8,
                seed=1,
            )
        )
        assert run.all_done()
        run.check_all()
        assert all(len(s.current_order) == 24 for s in run.servers)

    def test_nine_replicas_with_three_crashes(self):
        schedule = (
            FaultSchedule()
            .crash(8.0, "p1")
            .crash(20.0, "p5")
            .crash(32.0, "p9")
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=9,
                n_clients=2,
                requests_per_client=8,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=schedule,
                grace=300.0,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)
        assert len(run.correct_servers) == 6

    def test_majority_weight_scales(self):
        # n=9: majority weight is 5; a single opt reply (weight 2) can
        # never be adopted -- adoption needs four distinct endorsers
        # beyond the sequencer.
        run = run_scenario(
            ScenarioConfig(n_servers=9, requests_per_client=5, seed=3)
        )
        for adoption in run.trace.events(kind="adopt"):
            assert len(adoption["weight"]) >= 2  # adopted reply's own W
        assert run.clients[0].majority_weight == 5


class TestContention:
    def test_ten_clients_interleaved(self):
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=10,
                requests_per_client=5,
                machine="counter",
                seed=4,
            )
        )
        assert run.all_done()
        run.check_all()
        values = sorted(a.value.value for a in run.adopted().values())
        assert values == list(range(1, 51))

    def test_contention_with_crash(self):
        run = run_scenario(
            ScenarioConfig(
                n_servers=5,
                n_clients=6,
                requests_per_client=5,
                fd_interval=2.0,
                fd_timeout=6.0,
                fault_schedule=FaultSchedule().crash(10.0, "p1"),
                grace=300.0,
                seed=5,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)
        assert len(run.adopted()) == 30

    def test_open_loop_burst(self):
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=5,
                requests_per_client=10,
                driver="open",
                open_rate=4.0,
                grace=150.0,
                seed=6,
            )
        )
        assert run.all_done()
        run.check_all()
        assert len(run.adopted()) == 50
