"""Integration: OAR in failure-free runs (the optimistic fast path)."""

import pytest

from repro.harness import ScenarioConfig, run_scenario
from repro.sim.latency import LanProfile, UniformLatency

pytestmark = pytest.mark.integration



class TestFastPath:
    @pytest.mark.parametrize("n_servers", [3, 4, 5, 7])
    def test_all_requests_adopted_and_consistent(self, n_servers):
        run = run_scenario(
            ScenarioConfig(
                n_servers=n_servers,
                n_clients=2,
                requests_per_client=10,
                seed=n_servers,
            )
        )
        assert run.all_done()
        run.check_all()
        assert len(run.adopted()) == 20

    def test_no_phase2_without_suspicion(self):
        run = run_scenario(ScenarioConfig(requests_per_client=15, seed=1))
        assert run.trace.events(kind="phase2_start") == []
        assert run.trace.events(kind="opt_undeliver") == []
        for server in run.servers:
            assert server.epoch == 0

    def test_all_adoptions_optimistic(self):
        run = run_scenario(ScenarioConfig(requests_per_client=10, seed=2))
        for adoption in run.trace.events(kind="adopt"):
            assert not adoption["conservative"]

    def test_latency_is_three_phases(self):
        # Constant unit latency, no contention: request (1) + ordering (1)
        # + reply (1) = 3.  The sequencer's own reply takes 2 but carries
        # weight 1, so adoption waits for a 3-phase weight-2 reply.
        run = run_scenario(ScenarioConfig(requests_per_client=10, seed=3))
        latencies = run.latencies()
        assert all(abs(latency - 3.0) < 1e-9 for latency in latencies)

    def test_replicas_converge_to_same_state(self):
        run = run_scenario(
            ScenarioConfig(machine="bank", requests_per_client=25, seed=4)
        )
        run.check_all()
        fingerprints = {repr(s.machine.fingerprint()) for s in run.servers}
        assert len(fingerprints) == 1

    @pytest.mark.parametrize("machine", ["counter", "stack", "kv", "bank"])
    def test_every_state_machine_replicates(self, machine):
        run = run_scenario(
            ScenarioConfig(machine=machine, requests_per_client=15, seed=5)
        )
        assert run.all_done()
        run.check_all()

    def test_many_clients_interleave_consistently(self):
        run = run_scenario(
            ScenarioConfig(
                n_clients=6, requests_per_client=5, machine="counter", seed=6
            )
        )
        run.check_all()
        # Counter results reveal positions: the adopted values must be a
        # permutation of 1..30 (each request got a distinct position).
        values = sorted(a.value.value for a in run.adopted().values())
        assert values == list(range(1, 31))

    def test_jittery_network_keeps_correctness(self):
        run = run_scenario(
            ScenarioConfig(
                latency=UniformLatency(0.2, 2.5),
                requests_per_client=20,
                n_clients=2,
                seed=7,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_lan_profile_with_spikes(self):
        run = run_scenario(
            ScenarioConfig(
                latency=LanProfile(base=1.0, jitter=0.2, spike_probability=0.05),
                requests_per_client=20,
                seed=8,
            )
        )
        assert run.all_done()
        run.check_all()


class TestBatching:
    def test_batch_interval_groups_requests(self):
        run = run_scenario(
            ScenarioConfig(
                requests_per_client=10,
                n_clients=3,
                oar=__import__("repro.core.server", fromlist=["OARConfig"]).OARConfig(
                    batch_interval=5.0
                ),
                seed=9,
                horizon=2_000.0,
            )
        )
        assert run.all_done()
        run.check_all()
        orders = run.trace.events(kind="seq_order")
        # Batching must produce fewer ordering messages than requests.
        assert len(orders) < 30
        assert any(len(order["rids"]) > 1 for order in orders)

    def test_deterministic_replay(self):
        config = ScenarioConfig(requests_per_client=12, n_clients=2, seed=10)
        run_a = run_scenario(config)
        run_b = run_scenario(ScenarioConfig(requests_per_client=12, n_clients=2, seed=10))
        trace_a = [(e.time, e.pid, e.kind) for e in run_a.trace]
        trace_b = [(e.time, e.pid, e.kind) for e in run_b.trace]
        assert trace_a == trace_b
