"""Integration: OARConfig.paranoid runtime invariant checking.

Paranoid mode re-validates the server's structural invariants after
every delivered message; it must be silent on correct runs (including
crash/undo recovery) and loud on corrupted state.
"""

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, run_scenario
from repro.harness.figures import run_figure_4

pytestmark = pytest.mark.integration



class TestParanoidMode:
    def test_silent_on_clean_run(self):
        run = run_scenario(
            ScenarioConfig(
                requests_per_client=10,
                n_clients=2,
                oar=OARConfig(paranoid=True),
                seed=1,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_silent_across_crash_recovery(self):
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=10,
                fd_interval=2.0,
                fd_timeout=6.0,
                oar=OARConfig(paranoid=True),
                fault_schedule=FaultSchedule().crash(10.0, "p1"),
                grace=200.0,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_explicit_check_on_final_state(self):
        run = run_scenario(
            ScenarioConfig(requests_per_client=5, seed=3)
        )
        for server in run.servers:
            server.check_invariants()

    def test_detects_overlap_corruption(self):
        run = run_scenario(ScenarioConfig(requests_per_client=3, seed=4))
        server = run.servers[0]
        # Corrupt: pretend an optimistic message is also settled.
        server.a_delivered = server.a_delivered.concat(
            server.o_delivered.items[:1] or ("ghost",)
        )
        if server.o_delivered:
            with pytest.raises(RuntimeError, match="overlap"):
                server.check_invariants()
        else:
            # Failure-free run with immediate settle never happens here
            # (no phase 2), so o_delivered is non-empty; guard anyway.
            server.o_delivered = server.a_delivered[-1:]
            with pytest.raises(RuntimeError, match="overlap"):
                server.check_invariants()

    def test_detects_missing_body_corruption(self):
        run = run_scenario(ScenarioConfig(requests_per_client=3, seed=5))
        server = run.servers[0]
        server.o_delivered = server.o_delivered.append("phantom-1")
        with pytest.raises(RuntimeError, match="without request body"):
            server.check_invariants()

    def test_detects_undo_log_desync(self):
        run = run_scenario(ScenarioConfig(requests_per_client=3, seed=6))
        server = run.servers[0]
        assert server.phase == 1
        server.undo_log.push("rogue", lambda: None)
        with pytest.raises(RuntimeError, match="undo log"):
            server.check_invariants()

    def test_silent_through_figure4_undo(self):
        # The heaviest recovery path (partition + undo + re-delivery)
        # with paranoia enabled end to end.
        from repro.core.server import OARServer

        run = run_figure_4()
        # run_figure_4 builds its own servers; re-check their final state
        # explicitly (they were built without paranoid mode).
        for server in run.correct_servers:
            assert isinstance(server, OARServer)
            server.check_invariants()
