"""Integration tests for the admission-control plane: sequencer-side
shedding, the read bulkhead, control-plane isolation under a data-plane
flood, and the idle-plane digest-identity guarantee."""

import pytest

from repro.core.admission import Overloaded
from repro.core.server import OARConfig
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.sharding.cluster import ShardedScenarioConfig, run_sharded_scenario
from repro.sharding.rebalance import attach_rebalancer
from repro.workload.openloop import FlashCrowdProcess

pytestmark = pytest.mark.integration


def saturated(limit, **changes):
    """2x-saturation sessioned Poisson load against a costed sequencer."""
    config = ScenarioConfig(
        seed=9,
        driver="session",
        requests_per_client=200,
        open_rate=4.0,
        oar=OARConfig(order_cost=0.5),
        admission_limit=limit,
        horizon=50_000.0,
        grace=100.0,
    )
    return run_scenario(config.with_changes(**changes))


class TestWriteShedding:
    def test_saturation_sheds_deterministically_and_conserves(self):
        run = saturated(8)
        driver = run.drivers[0]
        assert run.all_done()
        assert driver.shed > 0
        assert driver.offered == driver.admitted + driver.shed + driver.throttled
        # Every shed decision fired exactly at the configured bound.
        for event in run.trace.events(kind="shed"):
            assert event["queue"] >= event["limit"] == 8
        # Sheds surface as failed OpResults wrapping Overloaded, through
        # the ordinary adopted map.
        client = run.clients[0]
        assert client.overloaded == driver.shed
        for rid in client.shed_rids:
            record = client.adopted[rid]
            assert record.position == -1
            assert not record.value.ok
            assert record.value.error == "overloaded"
            assert isinstance(record.value.value, Overloaded)
        run.check_all()

    def test_same_seed_sheds_identically(self):
        a, b = saturated(8), saturated(8)
        assert a.clients[0].shed_rids == b.clients[0].shed_rids
        assert [s.shed for s in a.servers] == [s.shed for s in b.servers]

    def test_retransmission_hits_the_notice_cache(self):
        # With retransmission on, a shed rid's retry must re-receive the
        # cached notice (at most one shed decision per rid), never a
        # second decision or a silent drop.
        run = saturated(8, retry_interval=25.0)
        assert run.all_done()
        assert run.drivers[0].shed > 0
        run.check_all()  # includes the at-most-once shed assertion


class TestReadBulkhead:
    def test_read_storm_sheds_on_its_own_queue(self):
        # A read-heavy flood against a costed read pipeline: reads shed
        # at read_queue_limit; the write path keeps its own ledger.
        config = ScenarioConfig(
            seed=4,
            driver="session",
            requests_per_client=300,
            open_rate=6.0,
            machine="kv",
            read_ratio=0.9,
            read_mode="optimistic",
            n_servers=3,
            oar=OARConfig(read_cost=1.0, order_cost=0.1),
            read_queue_limit=4,
            horizon=50_000.0,
            grace=100.0,
        )
        run = run_scenario(config)
        assert run.all_done()
        total_reads_shed = sum(s.reads_shed for s in run.servers)
        assert total_reads_shed > 0
        assert all(s.shed == 0 for s in run.servers)  # write queue untouched
        client = run.clients[0]
        assert client.shed_rids & client.read_rids  # read sheds surfaced
        run.check_all()


class TestControlPlaneBulkhead:
    def test_migration_completes_through_a_data_plane_flood(self):
        # A flash crowd saturates both sequencers past their admission
        # bound while a live migration runs.  The bulkhead exempts the
        # mig_* escrow steps from shedding, so the migration commits and
        # every migration checker passes despite heavy data-plane sheds.
        config = ShardedScenarioConfig(
            n_shards=2,
            n_servers=3,
            n_clients=2,
            requests_per_client=150,
            machine="bank",
            driver="session",
            open_rate=3.0,
            arrival=FlashCrowdProcess(
                base_rate=1.0, peak_rate=8.0, at=10.0, ramp=10.0,
                hold=120.0, decay=20.0,
            ),
            oar=OARConfig(order_cost=0.5),
            admission_limit=6,
            seed=21,
            horizon=50_000.0,
            grace=100.0,
        )
        run = run_sharded_scenario(config)
        coordinator = attach_rebalancer(run)
        key = run.key_universe[0]
        coordinator.schedule(30.0, lambda: coordinator.migrate(key, 1, src=0))
        run.execute()
        assert run.all_done()
        assert coordinator.done
        record = coordinator.journal[0]
        assert record.phase == "done"
        total_shed = sum(s.shed for ss in run.shards for s in ss)
        assert total_shed > 0, "the flood should overwhelm the data plane"
        # No control-class shed ever happened (the bulkhead guarantee).
        for event in run.trace.events(kind="shed"):
            assert event["cls"] in ("write", "read")
        run.check_all()


class TestIdlePlaneZeroOverhead:
    def test_digest_identity_when_admission_never_fires(self):
        # The acceptance criterion: a fault-free closed-loop run is
        # digest-identical whether the plane is off (None) or enabled
        # with bounds it never reaches -- the admission branch costs
        # nothing on the untriggered path.
        base = ScenarioConfig(
            seed=13,
            n_clients=2,
            requests_per_client=25,
            machine="bank",
            trace_messages=True,
        )
        off = run_scenario(base)
        armed = run_scenario(
            base.with_changes(admission_limit=10**9, read_queue_limit=10**9)
        )
        assert off.trace.digest() == armed.trace.digest()
        assert all(s.shed == 0 and s.reads_shed == 0 for s in armed.servers)
        assert all(c.overloaded == 0 for c in armed.clients)
        off.check_all()
        armed.check_all()
