"""Integration: the same OAR protocol code on the asyncio runtimes."""

import asyncio
from typing import List, Tuple

import pytest

from repro.analysis import checkers
from repro.core.client import OARClient
from repro.core.server import OARConfig, OARServer
from repro.failure.detector import HeartbeatFailureDetector
from repro.runtime import AsyncioCluster, TcpCluster
from repro.statemachine import CounterMachine

pytestmark = pytest.mark.integration



def build_cluster(cluster, n_servers: int = 3, fd_interval: float = 0.2,
                  fd_timeout: float = 1.0) -> Tuple[List[OARServer], OARClient]:
    group = [f"p{i + 1}" for i in range(n_servers)]
    servers = []
    for pid in group:
        server = OARServer(
            pid,
            group,
            CounterMachine(),
            lambda host: HeartbeatFailureDetector(
                host, group, interval=fd_interval, timeout=fd_timeout
            ),
            OARConfig(),
        )
        servers.append(server)
        cluster.add_process(server)
    client = OARClient("c1", group)
    cluster.add_process(client)
    return servers, client


async def closed_loop(cluster, client, total: int, timeout: float = 20.0) -> bool:
    submitted = {"n": 0}

    def submit_next(_adopted=None) -> None:
        if submitted["n"] < total:
            submitted["n"] += 1
            client.submit(("incr",))

    client.on_adopt = submit_next
    await cluster.start()
    submit_next()
    return await cluster.run_until(
        lambda: len(client.adopted) >= total, timeout=timeout
    )


class TestInMemoryRuntime:
    def test_failure_free_run(self):
        async def scenario():
            cluster = AsyncioCluster(link_delay=0.001)
            servers, client = build_cluster(cluster)
            done = await closed_loop(cluster, client, total=15)
            await cluster.shutdown()
            return cluster, servers, client, done

        cluster, servers, client, done = asyncio.run(scenario())
        assert done
        assert len(client.adopted) == 15
        values = sorted(a.value.value for a in client.adopted.values())
        assert values == list(range(1, 16))
        checkers.check_total_order(servers)
        checkers.check_replica_convergence(servers)
        checkers.check_external_consistency(cluster.trace, strict=False)
        checkers.check_majority_guarantee(cluster.trace, len(servers))

    def test_sequencer_crash_failover(self):
        async def scenario():
            cluster = AsyncioCluster(link_delay=0.001)
            servers, client = build_cluster(
                cluster, fd_interval=0.05, fd_timeout=0.25
            )
            submitted = {"n": 0}

            def submit_next(_adopted=None) -> None:
                if submitted["n"] < 12:
                    submitted["n"] += 1
                    client.submit(("incr",))

            client.on_adopt = submit_next
            await cluster.start()
            submit_next()
            await cluster.run_until(lambda: len(client.adopted) >= 4, timeout=10)
            cluster.crash("p1")
            done = await cluster.run_until(
                lambda: len(client.adopted) >= 12, timeout=20
            )
            await cluster.shutdown()
            return cluster, servers, client, done

        cluster, servers, client, done = asyncio.run(scenario())
        assert done
        survivors = [s for s in servers if not s.crashed]
        checkers.check_total_order(survivors)
        checkers.check_replica_convergence(survivors)
        checkers.check_external_consistency(cluster.trace, strict=False)
        assert all(server.epoch >= 1 for server in survivors)

    def test_latency_is_wall_clock_positive(self):
        async def scenario():
            cluster = AsyncioCluster(link_delay=0.002)
            _servers, client = build_cluster(cluster)
            await closed_loop(cluster, client, total=5)
            await cluster.shutdown()
            return client

        client = asyncio.run(scenario())
        for adopted in client.adopted.values():
            # At least 3 link hops of 2ms each.
            assert adopted.latency >= 0.005


class TestTcpRuntime:
    def test_failure_free_run_over_sockets(self):
        async def scenario():
            cluster = TcpCluster()
            servers, client = build_cluster(cluster)
            done = await closed_loop(cluster, client, total=10)
            await cluster.shutdown()
            return cluster, servers, client, done

        cluster, servers, client, done = asyncio.run(scenario())
        assert done
        assert len(client.adopted) == 10
        values = sorted(a.value.value for a in client.adopted.values())
        assert values == list(range(1, 11))
        checkers.check_total_order(servers)
        checkers.check_replica_convergence(servers)

    def test_crash_failover_over_sockets(self):
        async def scenario():
            cluster = TcpCluster()
            servers, client = build_cluster(
                cluster, fd_interval=0.05, fd_timeout=0.3
            )
            submitted = {"n": 0}

            def submit_next(_adopted=None) -> None:
                if submitted["n"] < 10:
                    submitted["n"] += 1
                    client.submit(("incr",))

            client.on_adopt = submit_next
            await cluster.start()
            submit_next()
            await cluster.run_until(lambda: len(client.adopted) >= 3, timeout=10)
            cluster.crash("p1")
            done = await cluster.run_until(
                lambda: len(client.adopted) >= 10, timeout=25
            )
            await cluster.shutdown()
            return servers, client, done

        servers, client, done = asyncio.run(scenario())
        assert done
        survivors = [s for s in servers if not s.crashed]
        checkers.check_total_order(survivors)
        checkers.check_replica_convergence(survivors)
