"""Integration: wrong suspicions, partitions, and epoch recovery in OAR."""

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, run_scenario

pytestmark = pytest.mark.integration



class TestWrongSuspicion:
    def test_wrongly_suspected_sequencer_stays_consistent(self):
        # The sequencer is alive the whole time but suspected for a
        # window: phase 2 runs, the epoch rotates, and everything is
        # still exactly-once and externally consistent.
        schedule = (
            FaultSchedule().suspect(8.0, "p1").unsuspect(25.0, "p1")
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=10,
                fd_kind="scripted",
                fault_schedule=schedule,
                grace=120.0,
                seed=1,
            )
        )
        assert run.all_done()
        run.check_all()
        assert not run.servers[0].crashed
        assert run.trace.events(kind="phase2_start")

    def test_repeated_wrong_suspicions(self):
        schedule = FaultSchedule()
        for round_number in range(3):
            start = 8.0 + round_number * 20.0
            schedule.suspect(start, "p1").unsuspect(start + 6.0, "p1")
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=12,
                fd_kind="scripted",
                fault_schedule=schedule,
                grace=200.0,
                seed=2,
            )
        )
        assert run.all_done()
        run.check_all()

    def test_suspicion_of_rotated_sequencer(self):
        # Epoch 0's sequencer is suspected, then epoch 1's new sequencer
        # is suspected too: two conservative phases back to back.
        schedule = (
            FaultSchedule()
            .suspect(8.0, "p1")
            .suspect(30.0, "p2")
            .unsuspect(60.0, "p1")
            .unsuspect(60.0, "p2")
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=1,
                requests_per_client=10,
                fd_kind="scripted",
                fault_schedule=schedule,
                grace=200.0,
                seed=3,
            )
        )
        assert run.all_done()
        run.check_all()
        epochs = {e["epoch"] for e in run.trace.events(kind="phase2_start")}
        assert len(epochs) >= 2


class TestPartitions:
    def test_minority_partition_heals_consistently(self):
        # p3 is cut off (with the sequencer p1 and p2 in the majority):
        # service continues; p3 catches up after healing.
        schedule = (
            FaultSchedule()
            .partition(10.0, [["p3"], ["p1", "p2", "c1", "c2"]])
            .suspect(12.0, "p3")
            .heal(40.0)
            .unsuspect(45.0, "p3")
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=10,
                fd_kind="scripted",
                fault_schedule=schedule,
                grace=200.0,
                seed=4,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)

    def test_sequencer_in_minority_partition(self):
        # The sequencer lands in the minority: the majority side runs
        # phase 2 and rotates; after healing the old sequencer's epoch-0
        # optimism is reconciled (possibly via Opt-undeliver).
        schedule = (
            FaultSchedule()
            .partition(6.0, [["p1"], ["p2", "p3", "c1", "c2"]])
            .suspect(8.0, "p1")
            .heal(40.0)
            .unsuspect(50.0, "p1")
        )
        run = run_scenario(
            ScenarioConfig(
                n_servers=3,
                n_clients=2,
                requests_per_client=8,
                fd_kind="scripted",
                fault_schedule=schedule,
                grace=300.0,
                seed=5,
            )
        )
        assert run.all_done()
        run.check_all(strict=False)


class TestPhaseIIGarbageCollection:
    """The Remark of Section 5.3: periodic PhaseII bounds O_delivered."""

    def test_gc_after_requests_settles_epochs(self):
        run = run_scenario(
            ScenarioConfig(
                requests_per_client=20,
                n_clients=1,
                oar=OARConfig(gc_after_requests=5),
                grace=200.0,
                seed=6,
            )
        )
        assert run.all_done()
        run.check_all()
        gc_phases = [
            e for e in run.trace.events(kind="phase2_start")
            if e["reason"] == "gc"
        ]
        assert len(gc_phases) >= 3
        # Settled state: epochs advanced without any failure.
        assert all(server.epoch >= 3 for server in run.servers)
        # Nothing was ever undone: GC phase 2 only confirms the optimism.
        assert run.trace.events(kind="opt_undeliver") == []

    def test_gc_interval_variant(self):
        run = run_scenario(
            ScenarioConfig(
                requests_per_client=15,
                n_clients=1,
                think_time=2.0,
                oar=OARConfig(gc_interval=10.0),
                grace=200.0,
                horizon=2_000.0,
                seed=7,
            )
        )
        assert run.all_done()
        run.check_all()
        assert any(
            e["reason"] == "gc" for e in run.trace.events(kind="phase2_start")
        )

    def test_gc_bounds_o_delivered_length(self):
        run = run_scenario(
            ScenarioConfig(
                requests_per_client=30,
                n_clients=1,
                oar=OARConfig(gc_after_requests=5),
                grace=200.0,
                seed=8,
            )
        )
        proposals = run.trace.events(kind="cnsv_propose")
        assert proposals
        max_len = max(len(p["o_delivered"]) for p in proposals)
        # Each consensus input stays near the GC threshold instead of
        # growing with the whole history (30 requests).
        assert max_len <= 10
