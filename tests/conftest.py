"""Shared pytest fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim.latency import ConstantLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> SimNetwork:
    return SimNetwork(sim, latency=ConstantLatency(1.0))
