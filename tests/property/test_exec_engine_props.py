"""Properties of the conflict-aware parallel execution engine.

Hypothesis drives randomized runs with a positive ``exec_cost`` and
multiple ``exec_lanes`` and asserts the engine's two core contracts:

* **Serial equivalence** -- scheduling only moves *when* state mutates,
  never *what* it becomes: a costed multi-lane run lands every replica in
  exactly the state (and hands every client exactly the adopted values)
  of the free-execution run of the same scenario, across seeds,
  machines, lane counts and costs.  The full checker bundle (total
  order, external consistency, convergence, read consistency) passes.

* **Lane fencing under undo/redo** -- a conservative adoption that
  Opt-undelivers an optimistic suffix while conflicting operations are
  still queued in (or occupying) lanes never desyncs the undo log from
  ``O_delivered``: ``paranoid=True`` asserts ``undo_log.tags ==
  O_delivered`` after *every* message at every server, and phase 2s are
  forced at a high rate (tiny ``gc_after_requests``) so undo constantly
  races in-flight execution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.server import OARConfig
from repro.faults import FaultSchedule
from repro.harness.scenario import ScenarioConfig, run_scenario

pytestmark = pytest.mark.property


def _run(machine, seed, exec_cost, exec_lanes, gc_after=None, crash_at=None,
         read_mode=None):
    config = ScenarioConfig(
        machine=machine,
        n_servers=3,
        n_clients=2,
        requests_per_client=15,
        read_ratio=0.3 if (machine == "kv" and read_mode) else None,
        n_keys=8,
        zipf_s=0.8,
        driver="open",
        open_rate=2.0,
        read_mode=read_mode,
        oar=OARConfig(
            exec_cost=exec_cost,
            exec_lanes=exec_lanes,
            gc_after_requests=gc_after,
            paranoid=True,
        ),
        fd_interval=1.0,
        fd_timeout=8.0,
        retry_interval=30.0 if crash_at is not None else None,
        fault_schedule=(
            FaultSchedule().crash(crash_at, "p1") if crash_at is not None else None
        ),
        grace=300.0,
        horizon=100_000.0,
        seed=seed,
    )
    run = run_scenario(config)
    assert run.all_done(), "run did not reach quiescence"
    return run


@given(
    seed=st.integers(min_value=0, max_value=40),
    machine=st.sampled_from(["kv", "bank", "counter"]),
    exec_lanes=st.sampled_from([2, 3, 4]),
    exec_cost=st.sampled_from([0.3, 0.7, 1.5]),
)
@settings(max_examples=12, deadline=None)
def test_parallel_and_serial_execution_agree(seed, machine, exec_lanes, exec_cost):
    costed = _run(machine, seed, exec_cost, exec_lanes)
    free = _run(machine, seed, 0.0, 1)
    costed.check_all()
    free.check_all()
    # Same replica states...
    assert [s.machine.fingerprint() for s in costed.servers] == [
        s.machine.fingerprint() for s in free.servers
    ]
    # ...and same adopted results at the clients (positions and values).
    def adopted_view(run):
        return {
            rid: (adopted.value, adopted.position)
            for rid, adopted in run.adopted().items()
        }

    assert adopted_view(costed) == adopted_view(free)


@given(
    seed=st.integers(min_value=0, max_value=40),
    exec_lanes=st.sampled_from([2, 4]),
    exec_cost=st.sampled_from([0.5, 1.0]),
    gc_after=st.sampled_from([3, 5]),
)
@settings(max_examples=10, deadline=None)
def test_undo_fences_lanes_under_forced_phase2(seed, exec_lanes, exec_cost, gc_after):
    # Frequent GC phase 2s undo/settle optimistic suffixes while the
    # lanes are saturated; paranoid mode asserts undo-log/O_delivered
    # alignment after every message, so a single fencing bug fails here.
    run = _run("kv", seed, exec_cost, exec_lanes, gc_after=gc_after)
    run.check_all()
    for server in run.servers:
        assert tuple(server.undo_log.tags) == server.o_delivered.items
        assert server.engine.idle


@given(
    seed=st.integers(min_value=0, max_value=40),
    exec_lanes=st.sampled_from([2, 4]),
    crash_at=st.floats(min_value=4.0, max_value=20.0),
)
@settings(max_examples=8, deadline=None)
def test_crash_driven_undo_with_busy_lanes(seed, exec_lanes, crash_at):
    # A sequencer crash forces the real suspicion->PhaseII->Cnsv-order
    # path (with genuine Bad suffixes) while execution lanes are busy.
    run = _run("bank", seed, 0.6, exec_lanes, crash_at=crash_at)
    run.check_all(strict=False)
    for server in run.servers:
        if not server.crashed:
            assert tuple(server.undo_log.tags) == server.o_delivered.items
            assert server.engine.idle


@pytest.mark.parametrize(
    "exec_cost, expect_cancelled",
    [
        # Decision lands after both doomed ops executed: the undo runs
        # their resolved inverses.
        (10.0, 0),
        # Decision lands while both are still in (or queued for) a lane:
        # the engine cancels them -- nothing executed, nothing to revert.
        (20.0, 2),
    ],
)
def test_figure4_undo_fences_lanes(exec_cost, expect_cancelled):
    # The paper's worst case (Figure 4: p2 Opt-delivered a doomed suffix
    # that consensus excludes) replayed under the execution service
    # model: the Bad suffix is undone in reverse delivery order whether
    # it already executed, is mid-lane, or is still dependency-chained.
    from repro.analysis import checkers
    from repro.harness.figures import run_figure_4

    run = run_figure_4(config=OARConfig(exec_cost=exec_cost, exec_lanes=2))
    p2 = run.server("p2")
    assert run.opt_undelivered("p2") == ("c2-1", "c1-1")  # reverse order
    assert p2.engine.cancelled_in_flight == expect_cancelled
    for server in run.correct_servers:
        assert tuple(server.settled_order.items)[:4] == (
            "c1-0", "c2-0", "c2-1", "c1-1",
        )
        assert tuple(server.undo_log.tags) == server.o_delivered.items
        assert server.engine.idle
    checkers.check_external_consistency(run.trace)
    checkers.check_cnsv_order_properties(run.trace, 4)
    checkers.check_replica_convergence(run.correct_servers)


@given(
    seed=st.integers(min_value=0, max_value=40),
    read_mode=st.sampled_from(["optimistic", "conservative"]),
    exec_lanes=st.sampled_from([2, 4]),
)
@settings(max_examples=8, deadline=None)
def test_reads_fenced_by_inflight_writes_stay_consistent(seed, read_mode, exec_lanes):
    # Replica-local reads wait for conflicting in-flight writes; the
    # read-consistency checker (inside check_all) asserts every adopted
    # conservative read is anchored in a prefix of the adopted order.
    run = _run("kv", seed, 0.5, exec_lanes, read_mode=read_mode)
    run.check_all()
    reads = sum(client.reads_adopted for client in run.clients)
    assert reads > 0
    for client in run.clients:
        assert client.outstanding == 0
