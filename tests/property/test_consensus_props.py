"""Property-based tests for the consensus oracle under random faults.

Agreement and Maj-validity must survive any legal combination of
coordinator crashes and (transient) wrong suspicions; termination must
hold whenever a majority stays correct and the failure detector
eventually stops lying.
"""

from typing import Any, Dict, List

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.chandra_toueg import ConsensusManager
from repro.failure.detector import ScriptedFailureDetector
from repro.sim.component import ComponentProcess
from repro.sim.latency import UniformLatency
from repro.sim.loop import Simulator
from repro.sim.network import SimNetwork

import pytest

pytestmark = pytest.mark.property


FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class Participant(ComponentProcess):
    def __init__(self, pid: str, group: List[str], collect: str) -> None:
        super().__init__(pid)
        self.fd = ScriptedFailureDetector()
        self.manager = self.add_component(
            ConsensusManager(self, group, self.fd, collect=collect)
        )
        self.decisions: Dict[Any, Any] = {}

    def propose(self, instance: Any, value: Any) -> None:
        self.manager.propose(
            instance, value, lambda k, v: self.decisions.__setitem__(k, v)
        )


@st.composite
def consensus_scenarios(draw):
    n = draw(st.sampled_from([3, 4, 5]))
    majority = n // 2 + 1
    n_crashes = draw(st.integers(0, n - majority))
    crash_victims = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=n_crashes,
            max_size=n_crashes,
            unique=True,
        )
    )
    crash_times = [draw(st.floats(0.0, 10.0)) for _ in crash_victims]
    # Transient wrong suspicions: (observer, target, start, duration).
    n_suspicions = draw(st.integers(0, 4))
    suspicions = [
        (
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            draw(st.floats(0.0, 8.0)),
            draw(st.floats(1.0, 10.0)),
        )
        for _ in range(n_suspicions)
    ]
    collect = draw(st.sampled_from(["majority", "unsuspected"]))
    seed = draw(st.integers(0, 100_000))
    return n, crash_victims, crash_times, suspicions, collect, seed


def run_consensus(scenario):
    n, crash_victims, crash_times, suspicions, collect, seed = scenario
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=UniformLatency(0.5, 1.5))
    group = [f"p{i + 1}" for i in range(n)]
    parts = [Participant(pid, group, collect) for pid in group]
    for part in parts:
        network.add_process(part)
    network.start_all()

    crashed = set()
    for victim_index, when in zip(crash_victims, crash_times):
        victim = group[victim_index]
        crashed.add(victim)
        network.crash_at(when, victim)
        # Crashed processes must eventually be suspected by all (strong
        # completeness); schedule it shortly after the crash.
        for part in parts:
            sim.schedule_at(
                when + 3.0, lambda fd=part.fd, v=victim: fd.force_suspect(v)
            )

    for observer_index, target_index, start, duration in suspicions:
        observer, target = parts[observer_index], group[target_index]
        sim.schedule_at(
            start, lambda fd=observer.fd, t=target: fd.force_suspect(t)
        )
        if target not in crashed:
            # Eventual accuracy: wrong suspicions are retracted.
            sim.schedule_at(
                start + duration,
                lambda fd=observer.fd, t=target: fd.force_unsuspect(t),
            )

    for part in parts:
        part.propose("k", f"value-{part.pid}")

    sim.run(max_events=400_000)
    survivors = [p for p in parts if not p.crashed]
    return survivors, crashed


@given(consensus_scenarios())
@FUZZ_SETTINGS
def test_agreement_and_termination(scenario):
    survivors, _crashed = run_consensus(scenario)
    decisions = [p.decisions.get("k") for p in survivors]
    assert all(d is not None for d in decisions), "termination violated"
    assert len({repr(d) for d in decisions}) == 1, "agreement violated"


@given(consensus_scenarios())
@FUZZ_SETTINGS
def test_decided_values_are_genuine_proposals(scenario):
    survivors, _crashed = run_consensus(scenario)
    decision = survivors[0].decisions.get("k")
    assert decision is not None
    for pid, value in decision:
        assert value == f"value-{pid}", "decision forged a proposal"


@given(consensus_scenarios())
@FUZZ_SETTINGS
def test_majority_collection_satisfies_maj_validity(scenario):
    n, _v, _t, _s, collect, _seed = scenario
    if collect != "majority":
        return  # footnote-5 mode intentionally weakens this (DESIGN.md)
    survivors, _crashed = run_consensus(scenario)
    decision = survivors[0].decisions.get("k")
    assert decision is not None
    assert len(decision) >= n // 2 + 1
