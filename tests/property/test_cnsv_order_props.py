"""Property-based verification of Cnsv-order against Section 5.4.

The generator produces inputs with exactly the structure the protocol
guarantees (Lemma 2): all optimistically-delivered sequences -- the
decision's ``dlv_i`` *and* the calling process's ``O_delivered`` -- are
prefixes of one underlying sequencer order; the ``notdlv_i`` are arbitrary
orderings of other received messages.  Over every such input the Fig. 7
post-processing must satisfy all seven properties plus thriftiness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnsv_order import compute_bad_new, decision_from_vector
from repro.core.sequences import EMPTY, MessageSequence, common_prefix

import pytest

pytestmark = pytest.mark.property



@st.composite
def cnsv_inputs(draw):
    """(o_delivered, decision, proposals) honouring Lemma 2."""
    universe = [f"m{i}" for i in range(draw(st.integers(2, 10)))]
    ground = draw(st.permutations(universe))

    n_processes = draw(st.integers(1, 4))
    proposals = []
    for index in range(n_processes):
        dlv_len = draw(st.integers(0, len(ground)))
        dlv = tuple(ground[:dlv_len])
        rest = [m for m in ground if m not in dlv]
        notdlv_pool = draw(st.permutations(rest)) if rest else []
        notdlv_len = draw(st.integers(0, len(notdlv_pool)))
        proposals.append((f"p{index + 1}", (dlv, tuple(notdlv_pool[:notdlv_len]))))

    caller_len = draw(st.integers(0, len(ground)))
    o_delivered = MessageSequence(ground[:caller_len])
    decision = decision_from_vector(proposals)
    return o_delivered, decision, proposals


@given(cnsv_inputs())
@settings(max_examples=300)
def test_unicity(data):
    o_delivered, decision, _proposals = data
    result = compute_bad_new(o_delivered, decision)
    good = o_delivered.subtract(result.bad)
    assert not (result.new.to_set() & good.to_set())


@given(cnsv_inputs())
@settings(max_examples=300)
def test_undo_legality(data):
    o_delivered, decision, _proposals = data
    result = compute_bad_new(o_delivered, decision)
    good = o_delivered.subtract(result.bad)
    assert good.concat(result.bad) == o_delivered


@given(cnsv_inputs())
@settings(max_examples=300)
def test_undo_thriftiness(data):
    o_delivered, decision, _proposals = data
    result = compute_bad_new(o_delivered, decision)
    assert common_prefix(result.bad, result.new) == EMPTY


@given(cnsv_inputs())
@settings(max_examples=300)
def test_validity(data):
    o_delivered, decision, proposals = data
    result = compute_bad_new(o_delivered, decision)
    proposed = set()
    for _pid, (dlv, notdlv) in proposals:
        proposed |= set(dlv) | set(notdlv)
    assert result.new.to_set() <= proposed


@given(cnsv_inputs())
@settings(max_examples=300)
def test_non_triviality(data):
    o_delivered, decision, proposals = data
    result = compute_bad_new(o_delivered, decision)
    final = o_delivered.subtract(result.bad).concat(result.new).to_set()
    majority = len(proposals) // 2 + 1
    counts = {}
    for _pid, (dlv, notdlv) in proposals:
        for m in set(dlv) | set(notdlv):
            counts[m] = counts.get(m, 0) + 1
    for m, holders in counts.items():
        if holders >= majority:
            assert m in final


@given(cnsv_inputs())
@settings(max_examples=300)
def test_undo_consistency(data):
    # A message undone by the caller appears in no dlv_i of the decision
    # (the operational form: it cannot have been Opt-delivered in the
    # agreed order by anyone whose value is in the decision).
    o_delivered, decision, _proposals = data
    result = compute_bad_new(o_delivered, decision)
    for rid in result.bad:
        for _pid, (dlv, _notdlv) in decision:
            assert rid not in dlv


@given(cnsv_inputs())
@settings(max_examples=300)
def test_agreement_across_all_prefix_callers(data):
    # Every process whose O_delivered is one of the Lemma-2 prefixes must
    # compute the same (O ⊖ Bad) ⊕ New from the same decision.
    o_delivered, decision, _proposals = data
    ground = list(o_delivered)
    finals = set()
    for cut in range(len(ground) + 1):
        caller = MessageSequence(ground[:cut])
        result = compute_bad_new(caller, decision)
        finals.add(caller.subtract(result.bad).concat(result.new).items)
    assert len(finals) == 1


@given(cnsv_inputs())
@settings(max_examples=300)
def test_bad_is_deterministic(data):
    o_delivered, decision, _proposals = data
    first = compute_bad_new(o_delivered, decision)
    second = compute_bad_new(o_delivered, decision)
    assert first.bad == second.bad
    assert first.new == second.new
    assert first.good == second.good
