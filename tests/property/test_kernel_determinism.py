"""Determinism guarantees across the kernel fast-lane rewrite.

The same-instant fast lane, handle-free posts and lazy-cancellation
compaction are pure performance features: they must not change *any*
observable schedule.  Three layers of evidence:

* a fixed-seed B5-style scenario whose full trace digest (time, pid,
  kind, fields -- message-level events included) is pinned to the value
  captured **before** the fast lane existed (commit f35608a);
* repeat-run reproducibility (same seed -> byte-identical digest);
* a hypothesis property driving random scheduling programs through both
  the real :class:`Simulator` and a minimal pure-heap reference
  implementing the original global-counter semantics, asserting
  identical firing order -- this pins the ``schedule`` / ``call_soon`` /
  ``post`` interleaving contract.
"""

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import ScenarioConfig, run_scenario
from repro.sim.loop import Simulator

pytestmark = pytest.mark.property


#: Captured at commit f35608a (pre-fast-lane kernel) for this exact
#: config; must never drift under semantics-preserving optimization.
GOLDEN_DIGEST = "83faff120b9b5c1eb25b54c56ed4c06fa72536a2ad217dffb50a6e323c06d3be"
GOLDEN_CONFIG = dict(
    n_servers=3,
    n_clients=2,
    requests_per_client=15,
    machine="kv",
    driver="open",
    open_rate=1.0,
    grace=100.0,
    horizon=10_000.0,
    seed=1234,
    trace_messages=True,
)


def _golden_run():
    run = run_scenario(ScenarioConfig(**GOLDEN_CONFIG))
    assert run.all_done()
    return run


class TestGoldenScenario:
    def test_digest_matches_pre_rewrite_golden(self):
        assert _golden_run().trace.digest() == GOLDEN_DIGEST

    def test_repeat_runs_are_byte_identical(self):
        assert _golden_run().trace.digest() == _golden_run().trace.digest()

    def test_different_seed_differs(self):
        config = dict(GOLDEN_CONFIG)
        config["seed"] = 4321
        other = run_scenario(ScenarioConfig(**config))
        assert other.trace.digest() != GOLDEN_DIGEST


# ----------------------------------------------------------------------
# Reference kernel: the original single-heap, global-counter semantics
# ----------------------------------------------------------------------

class _ReferenceLoop:
    """Every event in one heap, ordered by (time, scheduling counter)."""

    def __init__(self):
        self._queue = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay, callback):
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def call_soon(self, callback):
        heapq.heappush(self._queue, (self.now, next(self._counter), callback))

    def run(self):
        while self._queue:
            when, _seq, callback = heapq.heappop(self._queue)
            self.now = when
            callback()


#: A program is a tree of events; each node carries the scheduling API
#: to use and a delay bucket, and fires its children when it executes.
_api = st.sampled_from(["schedule", "post", "call_soon"])
_delay = st.sampled_from([0.0, 0.5, 1.0, 2.0])
_program = st.recursive(
    st.tuples(_api, _delay),
    lambda children: st.tuples(_api, _delay, st.lists(children, max_size=4)),
    max_leaves=40,
)


def _spawn(loop, spec, order, counter, use_real_api):
    if len(spec) == 2:
        api, delay, children = spec[0], spec[1], []
    else:
        api, delay, children = spec
    event_id = next(counter)

    def fire():
        order.append((event_id, loop.now))
        for child in children:
            _spawn(loop, child, order, counter, use_real_api)

    if api == "call_soon":
        loop.call_soon(fire)
    elif api == "post" and use_real_api:
        loop.post(delay, fire)
    else:  # "schedule" (the reference treats post as schedule)
        loop.schedule(delay, fire)


@given(st.lists(_program, min_size=1, max_size=6))
@settings(max_examples=200, deadline=None)
def test_interleaving_matches_reference_kernel(programs):
    """Fast lane + handle-free posts fire in exact global schedule order."""
    real_order, ref_order = [], []
    real = Simulator(seed=0)
    ref = _ReferenceLoop()
    real_ids, ref_ids = itertools.count(), itertools.count()
    for spec in programs:
        _spawn(real, spec, real_order, real_ids, use_real_api=True)
        _spawn(ref, spec, ref_order, ref_ids, use_real_api=False)
    real.run()
    ref.run()
    assert real_order == ref_order


@given(st.lists(_program, min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_run_and_step_agree(programs):
    """Driving via step() yields the same order as run()."""
    run_order, step_order = [], []
    by_run = Simulator(seed=0)
    by_step = Simulator(seed=0)
    run_ids, step_ids = itertools.count(), itertools.count()
    for spec in programs:
        _spawn(by_run, spec, run_order, run_ids, use_real_api=True)
        _spawn(by_step, spec, step_order, step_ids, use_real_api=True)
    by_run.run()
    while by_step.step():
        pass
    assert run_order == step_order
    assert by_run.events_processed == by_step.events_processed
