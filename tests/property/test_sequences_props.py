"""Property-based tests for the Section 5.1 sequence algebra.

The paper's operator definitions are transcribed as hypothesis laws; any
counterexample would mean our algebra disagrees with the paper's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import (
    EMPTY,
    MessageSequence,
    common_prefix,
    merge_dedup,
)

import pytest

pytestmark = pytest.mark.property


# Small alphabets maximize collisions, which is where the interesting
# behaviour of dedup/subtract/merge lives.
items = st.text(alphabet="abcdef", min_size=1, max_size=2)
seqs = st.lists(items, max_size=10).map(MessageSequence)


@given(seqs)
def test_construction_is_idempotent(seq):
    assert MessageSequence(seq.items) == seq


@given(seqs)
def test_no_duplicates_invariant(seq):
    assert len(seq) == len(seq.to_set())


@given(seqs, seqs)
def test_concat_length_bound(a, b):
    result = a.concat(b)
    assert len(result) <= len(a) + len(b)
    assert result.to_set() == a.to_set() | b.to_set()


@given(seqs, seqs)
def test_concat_preserves_left_prefix(a, b):
    assert a.is_prefix_of(a.concat(b))


@given(seqs)
def test_concat_empty_identity(a):
    assert a.concat(EMPTY) == a
    assert EMPTY.concat(a) == a


@given(seqs, seqs)
def test_subtract_removes_exactly(a, b):
    result = a.subtract(b)
    assert result.to_set() == a.to_set() - b.to_set()
    # Relative order within a is preserved.
    positions = [a.index_of(x) for x in result]
    assert positions == sorted(positions)


@given(seqs)
def test_subtract_self_is_empty(a):
    assert a.subtract(a) == EMPTY


@given(seqs, seqs)
def test_subtract_then_concat_is_undo_legality(a, b):
    # For any b, (a ⊖ b) ⊕ (a ∩ b preserved in a-order as a suffix?) --
    # the general identity used by the proofs holds when b is a suffix:
    suffix = a.suffix_from(len(a) // 2)
    assert a.subtract(suffix).concat(suffix) == a


@given(seqs, seqs)
def test_common_prefix_is_prefix_of_both(a, b):
    prefix = common_prefix(a, b)
    assert prefix.is_prefix_of(a)
    assert prefix.is_prefix_of(b)


@given(seqs, seqs)
def test_common_prefix_is_maximal(a, b):
    prefix = common_prefix(a, b)
    n = len(prefix)
    if n < len(a) and n < len(b):
        assert a[n] != b[n]


@given(seqs, seqs)
def test_common_prefix_commutative(a, b):
    assert common_prefix(a, b) == common_prefix(b, a)


@given(seqs)
def test_common_prefix_idempotent(a):
    assert common_prefix(a, a) == a


@given(seqs, seqs, seqs)
def test_common_prefix_associative_via_nary(a, b, c):
    assert common_prefix(a, b, c) == common_prefix(common_prefix(a, b), c)


@given(seqs, seqs)
def test_merge_dedup_matches_paper_recursion(a, b):
    # ⊎(s1, s2) = s1 ⊕ (s2 ⊖ s1)
    assert merge_dedup(a, b) == a.concat(b.subtract(a))


@given(seqs, seqs, seqs)
def test_merge_dedup_recursive_step(a, b, c):
    # ⊎(s1, ..., s_{i+1}) = ⊎(s1, ..., s_i) ⊕ (s_{i+1} ⊖ ⊎(s1, ..., s_i))
    left = merge_dedup(a, b, c)
    prefix = merge_dedup(a, b)
    assert left == prefix.concat(c.subtract(prefix))


@given(seqs, seqs)
def test_merge_dedup_union_of_members(a, b):
    assert merge_dedup(a, b).to_set() == a.to_set() | b.to_set()


@given(seqs)
def test_prefix_relation_reflexive_and_antisymmetric(a):
    assert a.is_prefix_of(a)
    longer = a.concat(MessageSequence(["zz"]))
    assert a.is_prefix_of(longer)
    assert not longer.is_prefix_of(a)


@given(st.lists(items, max_size=10), st.lists(items, max_size=10))
def test_equality_semantics(xs, ys):
    a, b = MessageSequence(xs), MessageSequence(ys)
    if a.items == b.items:
        assert a == b and hash(a) == hash(b)
    else:
        assert a != b
