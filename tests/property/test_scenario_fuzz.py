"""Property-based scenario fuzzing: the paper's guarantees under random faults.

hypothesis drives the fault schedule (crash victims/times, transient
wrong suspicions, minority partitions) and the workload shape; every
generated run must satisfy the full checker bundle.  This subsumes the
fixed-seed soak in tests/integration/test_propositions.py with an
adversarial search component (shrinking gives a minimal failing schedule
when something breaks).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultSchedule
from repro.harness import ScenarioConfig, run_scenario

import pytest

pytestmark = pytest.mark.property


SCENARIO_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def fault_plans(draw, n_servers: int):
    """A random-but-legal fault plan for ``n_servers`` OAR replicas."""
    pids = [f"p{i + 1}" for i in range(n_servers)]
    majority = n_servers // 2 + 1
    schedule = FaultSchedule()

    max_crashes = n_servers - majority
    n_crashes = draw(st.integers(0, max_crashes))
    victims = draw(
        st.lists(
            st.sampled_from(pids),
            min_size=n_crashes,
            max_size=n_crashes,
            unique=True,
        )
    )
    for victim in victims:
        schedule.crash(draw(st.floats(2.0, 50.0)), victim)

    survivors = [pid for pid in pids if pid not in victims]
    for pid in survivors:
        if draw(st.booleans()):
            start = draw(st.floats(2.0, 40.0))
            schedule.suspect(start, pid)
            schedule.unsuspect(start + draw(st.floats(3.0, 15.0)), pid)

    if draw(st.booleans()) and len(survivors) > majority:
        isolated = draw(st.sampled_from(survivors))
        rest = [pid for pid in pids if pid != isolated]
        start = draw(st.floats(2.0, 30.0))
        schedule.partition(start, [[isolated], rest + ["c1", "c2"]])
        schedule.heal(start + draw(st.floats(5.0, 25.0)))

    schedule.actions.sort(key=lambda action: action.time)
    return schedule


@given(
    schedule=fault_plans(n_servers=3),
    seed=st.integers(0, 10_000),
    machine=st.sampled_from(["counter", "stack", "bank"]),
)
@SCENARIO_SETTINGS
def test_three_replicas_survive_any_legal_fault_plan(schedule, seed, machine):
    run = run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=6,
            machine=machine,
            fd_interval=2.0,
            fd_timeout=6.0,
            fault_schedule=schedule,
            grace=300.0,
            seed=seed,
        )
    )
    assert run.all_done(), "run did not quiesce"
    run.check_all(strict=False)


@given(schedule=fault_plans(n_servers=5), seed=st.integers(0, 10_000))
@SCENARIO_SETTINGS
def test_five_replicas_survive_any_legal_fault_plan(schedule, seed):
    run = run_scenario(
        ScenarioConfig(
            n_servers=5,
            n_clients=2,
            requests_per_client=5,
            fd_interval=2.0,
            fd_timeout=6.0,
            fault_schedule=schedule,
            grace=300.0,
            seed=seed,
        )
    )
    assert run.all_done(), "run did not quiesce"
    run.check_all(strict=False)


@given(
    seed=st.integers(0, 10_000),
    batch_interval=st.one_of(st.just(0.0), st.floats(0.01, 6.0)),
    gc_after=st.one_of(st.none(), st.integers(2, 8)),
)
@SCENARIO_SETTINGS
def test_protocol_knobs_never_affect_safety(seed, batch_interval, gc_after):
    from repro.core.server import OARConfig

    run = run_scenario(
        ScenarioConfig(
            n_servers=3,
            n_clients=2,
            requests_per_client=6,
            oar=OARConfig(
                batch_interval=batch_interval,
                gc_after_requests=gc_after,
                paranoid=True,  # runtime invariant checks on every event
            ),
            grace=200.0,
            horizon=3_000.0,
            seed=seed,
        )
    )
    assert run.all_done()
    run.check_all()
