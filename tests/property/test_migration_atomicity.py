"""Property: migrations interleaved with cross-shard 2PC stay atomic.

Hypothesis drives randomized schedules of live key migrations against a
sharded bank under a cross-shard transfer workload.  Whatever the
interleaving -- migrations racing transfers on the same accounts, moves
chained hot off each other, exports vetoed by in-flight escrow holds --
two invariants must hold at quiescence:

* **conservation**: account balances + transfer escrow + migration
  escrow sum to the initial money supply across all shards (no transfer
  that commits on one shard and aborts on the other, no balance lost or
  duplicated by a move);
* **single owner**: every account is owned by exactly one shard's
  replicas, and the epoch-current routing table points at that shard.

Both are checked by ``check_migration_atomicity`` (plus the full
per-shard paper bundle and cross-shard 2PC checker via ``check_all``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)

pytestmark = pytest.mark.property

#: One migration instruction: (key index, destination offset, start time).
migration = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=5.0, max_value=120.0),
)


@given(
    seed=st.integers(min_value=0, max_value=40),
    cross_ratio=st.sampled_from([0.0, 0.3, 0.7]),
    n_shards=st.sampled_from([2, 3]),
    migrations=st.lists(migration, min_size=1, max_size=4),
)
@settings(max_examples=12, deadline=None)
def test_random_migration_transfer_interleavings(
    seed, cross_ratio, n_shards, migrations
):
    def arm(run):
        coordinator = attach_rebalancer(run, retry_delay=4.0, max_attempts=4)
        universe = run.key_universe

        def start(key_index, dst_offset):
            key = universe[key_index % len(universe)]
            src = run.routing_table.shard_of(key)
            coordinator.migrate(key, (src + dst_offset) % n_shards)

        for key_index, dst_offset, when in migrations:
            # coordinator.schedule (not a raw sim timer) holds the run
            # open: drivers may finish before `when`, and a quiesced run
            # would otherwise cut the migration off mid-grace.
            coordinator.schedule(
                when, lambda ki=key_index, do=dst_offset: start(ki, do)
            )

    run = run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=n_shards,
            n_servers=3,
            n_clients=2,
            requests_per_client=12,
            machine="bank",
            workload="cross",
            cross_ratio=cross_ratio,
            accounts_per_shard=3,
            seed=seed,
            arm=arm,
            horizon=50_000.0,
            grace=100.0,
        )
    )
    assert run.all_done(), "run (incl. migrations) must reach quiescence"

    # Single owner, router agreement, conservation, 2PC atomicity, and
    # the per-shard paper properties -- all of it.
    run.check_all()

    # Belt and braces: recompute conservation by hand, independently of
    # the checker's double-count compensation (at quiescence no
    # migration escrow survives, so a straight sum must work).
    observed = sum(
        run.correct_servers(shard)[0].machine.conserved_total()
        for shard in range(n_shards)
    )
    assert observed == run.initial_total

    # And the single-owner invariant, also by hand.
    for key in run.key_universe:
        owners = [
            shard
            for shard in range(n_shards)
            if run.correct_servers(shard)[0].machine.owns(key)
        ]
        assert len(owners) == 1, f"{key} owned by {owners}"
        assert run.routing_table.shard_of(key) == owners[0]
