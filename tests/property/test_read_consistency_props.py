"""Property: replica-local reads stay consistent under randomized runs.

Hypothesis drives read-heavy sharded scenarios -- random seeds, read
modes, shard counts, and a randomly timed live migration of the Zipf
head -- and asserts the full checker bundle.  ``check_read_consistency``
(invoked by ``check_all``) is the property under test: every
conservative read observes a prefix-closed state of its shard's adopted
order, reads racing the migration's freeze/install window redirect
instead of hanging or erroring, and optimistic staleness is only ever
*counted*.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.sharding import (
    ShardedScenarioConfig,
    attach_rebalancer,
    run_sharded_scenario,
)

pytestmark = pytest.mark.property


@given(
    seed=st.integers(min_value=0, max_value=30),
    read_mode=st.sampled_from(["optimistic", "conservative"]),
    n_shards=st.sampled_from([1, 2]),
    read_ratio=st.sampled_from([0.5, 0.9]),
    migrate_at=st.one_of(st.none(), st.floats(min_value=10.0, max_value=80.0)),
)
@settings(max_examples=10, deadline=None)
def test_random_read_heavy_runs_stay_consistent(
    seed, read_mode, n_shards, read_ratio, migrate_at
):
    def arm(run):
        if migrate_at is None or n_shards < 2:
            return
        coordinator = attach_rebalancer(run)
        key = run.key_universe[seed % 4]  # a hot-ish key under Zipf

        def kick():
            src = run.routing_table.shard_of(key)
            coordinator.migrate(key, (src + 1) % n_shards)

        coordinator.schedule(migrate_at, kick)

    run = run_sharded_scenario(
        ShardedScenarioConfig(
            n_shards=n_shards,
            n_servers=3,
            n_clients=2,
            requests_per_client=25,
            machine="kv",
            workload="readheavy",
            zipf_s=1.3,
            read_mode=read_mode,
            read_ratio=read_ratio,
            retry_interval=40.0,
            arm=arm,
            grace=200.0,
            horizon=50_000.0,
            seed=seed,
        )
    )
    assert run.all_done()
    run.check_all()
    reads = sum(client.reads_adopted for client in run.clients)
    assert reads > 0
    for client in run.clients:
        assert client.outstanding == 0
