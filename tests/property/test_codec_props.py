"""Hypothesis round-trip properties for the binary wire codec.

The codec's correctness contract is *transparency*: a decoded frame is
indistinguishable -- by field equality and by ``repr`` (which the trace
digests and the PR-7 wire checksum both hang off) -- from the object
that was encoded.  These properties drive every registered wire type
through randomly generated field values, plus the structural payloads
(``MessageSequence``, ``RMsg`` wrapping, the fault plane's
``CorruptedPayload`` envelope) and a determinism check: a seeded sim
scenario whose every payload is round-tripped through the codec in
flight produces the same trace digest under binary, pickle, and no
codec at all.
"""

from dataclasses import fields

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.broadcast.reliable import RMsg
from repro.core.messages import Request
from repro.core.sequences import MessageSequence
from repro.harness.scenario import ScenarioConfig, run_scenario
from repro.runtime.codec import (
    WIRE_TAGS,
    BinaryCodec,
    PickleCodec,
    make_codec,
    registered_types,
)
from repro.sim.faultplane import CorruptedPayload, wire_checksum
from repro.sim.network import SimNetwork

# ---------------------------------------------------------------------------
# Strategies: one per field annotation used by the registered classes
# ---------------------------------------------------------------------------

_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789:._-", min_size=1, max_size=12
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=16),
    st.floats(allow_nan=False),
    st.binary(max_size=12),
)
_hashables = st.one_of(_ids, st.integers(), st.tuples(_ids, st.integers()))

#: Arbitrary ``Any``-annotated payload values: scalars plus nested
#: containers, message sequences, and an unregistered object (exercises
#: the pickle escape hatch as a leaf).
_payloads = st.recursive(
    st.one_of(_scalars, _hashables.map(lambda v: MessageSequence([v]))),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
        st.frozensets(_hashables, max_size=3),
    ),
    max_leaves=8,
)


def _instances(cls):
    """Instances of one registered wire class with generated fields."""
    requests = st.builds(
        Request,
        rid=_ids,
        client=_ids,
        op=st.lists(_scalars, max_size=3).map(tuple),
    )
    by_annotation = {
        "str": _ids,
        "int": st.integers(-(2**31), 2**31),
        "bool": st.booleans(),
        "float": st.floats(allow_nan=False),
        "Optional[int]": st.none() | st.integers(0, 10_000),
        "Optional[str]": st.none() | _ids,
        "Tuple[str, ...]": st.lists(_ids, max_size=4).map(tuple),
        "Tuple[Any, ...]": st.lists(_scalars, max_size=4).map(tuple),
        "FrozenSet[str]": st.frozensets(_ids, max_size=4),
        "Tuple[Request, ...]": st.lists(requests, max_size=3).map(tuple),
        "DecisionVector": st.lists(
            st.tuples(_ids, _payloads), max_size=3
        ).map(tuple),
        "Any": _payloads,
    }
    return st.tuples(
        *[by_annotation[f.type] for f in fields(cls)]
    ).map(lambda values: cls(*values))


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------

@settings(max_examples=300, deadline=None)
@given(st.data())
def test_every_registered_type_roundtrips(data):
    """encode -> decode is the identity (by == and by repr) for every
    registered wire class, under both codecs, as a frame and bare."""
    cls = data.draw(st.sampled_from(registered_types()))
    message = data.draw(_instances(cls))
    # frozenset iteration order is not guaranteed to survive
    # reconstruction (it depends on insertion history when hashes
    # collide), so repr fidelity is only asserted for set-free examples;
    # field equality holds regardless.
    set_free = "frozenset(" not in repr(message)
    for codec in (BinaryCodec(), PickleCodec()):
        src, out = codec.decode_frame(codec.encode_frame("p1", message))
        assert src == "p1"
        assert out == message
        if set_free:
            assert repr(out) == repr(message)
        assert codec.decode(codec.encode(message)) == message


@settings(max_examples=100, deadline=None)
@given(st.lists(_hashables, max_size=8))
def test_message_sequence_payload_roundtrips(items):
    seq = MessageSequence(items)
    out = BinaryCodec.decode(BinaryCodec.encode(seq))
    assert isinstance(out, MessageSequence)
    assert out == seq
    assert tuple(out) == tuple(seq)


@settings(max_examples=100, deadline=None)
@given(
    rid=_ids,
    sender=_ids,
    group=st.lists(_ids, min_size=1, max_size=4).map(tuple),
    request=_instances(Request),
)
def test_rmsg_wrapping_roundtrips(rid, sender, group, request):
    """The R-multicast envelope round-trips with its nested Request."""
    wrapped = RMsg(rid, sender, request, group)
    src, out = BinaryCodec.decode_frame(BinaryCodec.encode_frame("s1", wrapped))
    assert out == wrapped
    assert out.payload == request


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_checksum_envelope_is_codec_stable(data):
    """The PR-7 wire checksum (CRC-32 of repr) is invariant under a
    codec round-trip -- for registered messages and for the fault
    plane's CorruptedPayload wrapper (which rides the pickle escape)."""
    cls = data.draw(st.sampled_from(registered_types()))
    message = data.draw(_instances(cls))
    # The checksum is CRC-32 of repr; see the set-order caveat above.
    assume("frozenset(" not in repr(message))
    out = BinaryCodec.decode(BinaryCodec.encode(message))
    assert wire_checksum(out) == wire_checksum(message)

    mangled = CorruptedPayload(message)
    out = BinaryCodec.decode(BinaryCodec.encode(mangled))
    assert isinstance(out, CorruptedPayload)
    assert wire_checksum(out) == wire_checksum(mangled)


def test_registry_is_append_only_prefix():
    """Tags are list positions: dense, starting at 0, in registration
    order.  (Reordering or removal would silently corrupt the wire
    contract between mixed-version peers.)"""
    tags = [WIRE_TAGS[cls] for cls in registered_types()]
    assert tags == list(range(len(tags)))


# ---------------------------------------------------------------------------
# Cross-codec determinism on a seeded scenario
# ---------------------------------------------------------------------------

_SCENARIO = dict(
    n_servers=3,
    n_clients=2,
    requests_per_client=10,
    machine="kv",
    driver="open",
    open_rate=1.0,
    grace=100.0,
    horizon=10_000.0,
    seed=99,
    trace_messages=True,
)


def _digest_through_codec(monkeypatch, codec_name):
    """Run the seeded sim scenario with every payload round-tripped
    through the codec at transmit time, as if it crossed a real wire."""
    real_transmit = SimNetwork.transmit
    if codec_name is not None:
        codec = make_codec(codec_name)

        def transmit(self, src, dst, payload):
            return real_transmit(self, src, dst, codec.decode(codec.encode(payload)))

        monkeypatch.setattr(SimNetwork, "transmit", transmit)
    run = run_scenario(ScenarioConfig(**_SCENARIO))
    assert run.all_done()
    return run.trace.digest()


@pytest.mark.parametrize("codec_name", ["binary", "pickle"])
def test_codec_is_transparent_to_trace_digests(monkeypatch, codec_name):
    """A seeded scenario produces the identical trace digest whether
    payloads cross the wire through the codec or by reference."""
    reference = _digest_through_codec(monkeypatch, None)
    assert _digest_through_codec(monkeypatch, codec_name) == reference
