"""Property-based tests for state-machine determinism and undo exactness.

These are the two properties the OAR server's correctness rests on:

* **Determinism** -- two replicas applying the same operations produce
  identical results and states (active replication's precondition,
  Section 2.1).
* **Undo exactness** -- ``apply_with_undo`` followed by the undo closure
  is the identity on state, and undoing a suffix of operations in
  reverse order restores the pre-suffix state (the Opt-undeliver
  discipline, footnote 2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statemachine import (
    BankMachine,
    CounterMachine,
    KVStoreMachine,
    StackMachine,
)

import pytest

pytestmark = pytest.mark.property


# -- operation strategies ----------------------------------------------

stack_op = st.one_of(
    st.tuples(st.just("push"), st.text("xyz", min_size=1, max_size=2)),
    st.just(("pop",)),
    st.just(("top",)),
    st.just(("size",)),
)

kv_op = st.one_of(
    st.tuples(st.just("set"), st.sampled_from("abc"), st.integers(0, 9)),
    st.tuples(st.just("get"), st.sampled_from("abc")),
    st.tuples(st.just("delete"), st.sampled_from("abc")),
    st.tuples(
        st.just("cas"), st.sampled_from("abc"), st.integers(0, 9), st.integers(0, 9)
    ),
)

counter_op = st.one_of(
    st.just(("incr",)),
    st.tuples(st.just("incr"), st.integers(-5, 5)),
    st.just(("decr",)),
    st.just(("read",)),
)

bank_op = st.one_of(
    st.tuples(st.just("deposit"), st.sampled_from(["a", "b"]), st.integers(-5, 50)),
    st.tuples(st.just("withdraw"), st.sampled_from(["a", "b"]), st.integers(0, 80)),
    st.tuples(
        st.just("transfer"),
        st.sampled_from(["a", "b"]),
        st.sampled_from(["a", "b"]),
        st.integers(0, 60),
    ),
    st.tuples(st.just("balance"), st.sampled_from(["a", "b"])),
    st.just(("total",)),
)

MACHINES = [
    (lambda: StackMachine(), stack_op),
    (lambda: KVStoreMachine(), kv_op),
    (lambda: CounterMachine(), counter_op),
    (lambda: BankMachine({"a": 100, "b": 100}), bank_op),
]


def machine_and_ops():
    return st.sampled_from(range(len(MACHINES))).flatmap(
        lambda index: st.tuples(
            st.just(index),
            st.lists(MACHINES[index][1], min_size=0, max_size=25),
        )
    )


@given(machine_and_ops())
@settings(max_examples=200)
def test_replica_determinism(data):
    index, ops = data
    factory, _strategy = MACHINES[index]
    m1, m2 = factory(), factory()
    results1 = [m1.apply(op) for op in ops]
    results2 = [m2.apply(op) for op in ops]
    assert results1 == results2
    assert m1.fingerprint() == m2.fingerprint()


@given(machine_and_ops())
@settings(max_examples=200)
def test_single_undo_is_identity(data):
    index, ops = data
    factory, _strategy = MACHINES[index]
    machine = factory()
    for op in ops:
        before = machine.fingerprint()
        _result, undo = machine.apply_with_undo(op)
        undo()
        assert machine.fingerprint() == before
        machine.apply(op)  # then actually apply and move on


@given(machine_and_ops(), st.integers(0, 25))
@settings(max_examples=200)
def test_suffix_undo_in_reverse_order(data, cut):
    # Apply all ops; undo the suffix after `cut` in reverse order; the
    # state must equal a fresh machine that applied only the prefix.
    index, ops = data
    factory, _strategy = MACHINES[index]
    cut = min(cut, len(ops))

    machine = factory()
    undos = []
    for op in ops:
        _result, undo = machine.apply_with_undo(op)
        undos.append(undo)
    for undo in reversed(undos[cut:]):
        undo()

    reference = factory()
    for op in ops[:cut]:
        reference.apply(op)
    assert machine.fingerprint() == reference.fingerprint()


@given(machine_and_ops())
@settings(max_examples=200)
def test_apply_with_undo_result_matches_plain_apply(data):
    index, ops = data
    factory, _strategy = MACHINES[index]
    m1, m2 = factory(), factory()
    for op in ops:
        result_undo, _undo = m1.apply_with_undo(op)
        result_plain = m2.apply(op)
        assert result_undo == result_plain


@given(machine_and_ops())
@settings(max_examples=100)
def test_snapshot_restore_roundtrip(data):
    index, ops = data
    factory, _strategy = MACHINES[index]
    machine = factory()
    mid = len(ops) // 2
    for op in ops[:mid]:
        machine.apply(op)
    snapshot = machine.snapshot()
    fingerprint = machine.fingerprint()
    for op in ops[mid:]:
        machine.apply(op)
    machine.restore(snapshot)
    assert machine.fingerprint() == fingerprint


@given(st.lists(bank_op, max_size=30))
@settings(max_examples=100)
def test_bank_conservation_under_transfers(ops):
    machine = BankMachine({"a": 100, "b": 100})
    for op in ops:
        if op[0] == "transfer":
            before = machine.total_balance()
            machine.apply(op)
            assert machine.total_balance() == before
        else:
            machine.apply(op)
